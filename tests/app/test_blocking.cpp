// Temporal-blocking (wavefront) and static-dispatch equivalence tests
// (DESIGN.md §11). The fused φ/µ schedule and the statically-owned slab
// launches must reproduce the reference step order bitwise — same compiled
// kernels, same ghost values, same Philox noise streams — across boundary
// kinds, time schemes, kernel splits and SIMD widths.
#include <gtest/gtest.h>

#include <cmath>

#include "pfc/app/params.hpp"
#include "pfc/app/simulation.hpp"

namespace pfc::app {
namespace {

void init_disk(Simulation& sim, double cx, double cy, double r) {
  sim.init_phi([&](long long x, long long y, long long, int c) {
    const double d =
        std::sqrt((x - cx) * (x - cx) + (y - cy) * (y - cy)) - r;
    const double solid = interface_profile(d, 6.0);
    if (c == 0) return 1.0 - solid;
    return c == 1 ? solid : 0.0;
  });
  sim.init_mu([](long long x, long long, long long, int) {
    return 0.01 * std::sin(0.3 * double(x));
  });
}

/// Runs the same problem with and without the fused wavefront schedule and
/// demands bitwise-identical φ and µ trajectories.
void expect_fused_bitwise(const GrandChemParams& params,
                          SimulationOptions base, long long tile_rows,
                          int steps) {
  GrandChemModel model(params);
  SimulationOptions unfused = base;
  unfused.blocking = BlockingMode::Off;
  SimulationOptions fused = base;
  fused.blocking = BlockingMode::Fixed;
  fused.blocking_tile_rows = tile_rows;

  Simulation ref(model, unfused), wf(model, fused);
  ASSERT_FALSE(ref.blocking_active());
  ASSERT_TRUE(wf.blocking_active())
      << "wavefront schedule did not activate: "
      << wf.blocking_plan().reason;
  for (Simulation* s : {&ref, &wf}) init_disk(*s, 20, 16, 9);
  ref.run(steps);
  wf.run(steps);
  EXPECT_DOUBLE_EQ(Array::max_abs_diff(ref.phi(), wf.phi()), 0.0);
  EXPECT_DOUBLE_EQ(Array::max_abs_diff(ref.mu(), wf.mu()), 0.0);
  EXPECT_GT(wf.report().threading.fused_substeps, 0);
  EXPECT_EQ(ref.report().threading.fused_substeps, 0);
}

SimulationOptions base_2d(int threads) {
  SimulationOptions o;
  o.cells = {40, 32, 1};
  o.threads = threads;
  o.dispatch = Dispatch::Static;
  return o;
}

TEST(BlockingBitwise, TwoPhasePeriodicSerial) {
  expect_fused_bitwise(make_two_phase(2), base_2d(1), 4, 12);
}

TEST(BlockingBitwise, TwoPhasePeriodicThreaded) {
  expect_fused_bitwise(make_two_phase(2), base_2d(2), 4, 12);
}

TEST(BlockingBitwise, TwoPhaseZeroGradient) {
  SimulationOptions o = base_2d(2);
  o.boundary = grid::BoundaryKind::ZeroGradient;
  expect_fused_bitwise(make_two_phase(2), o, 4, 12);
}

TEST(BlockingBitwise, SplitStaggeredHeun) {
  SimulationOptions o = base_2d(2);
  o.compile.split_phi = true;
  o.compile.split_mu = true;
  o.time_scheme = TimeScheme::Heun;
  GrandChemParams p = make_p1(2);
  p.dt = 0.005;
  expect_fused_bitwise(p, o, 8, 8);
}

TEST(BlockingBitwise, PhiloxNoiseStreamsSurviveFusion) {
  // P2 carries multiplicative Philox noise: counter-based streams keyed on
  // (cell, step), so the re-anchored tile launches must reproduce them.
  GrandChemParams p = make_p2(2);
  p.dt = 0.002;
  ASSERT_GT(p.noise_amplitude, 0.0) << "test needs the noisy preset";
  SimulationOptions o = base_2d(2);
  o.boundary = grid::BoundaryKind::ZeroGradient;
  expect_fused_bitwise(p, o, 4, 6);
}

TEST(BlockingBitwise, VectorWidths) {
  for (int width : {1, 4, 8}) {
    SimulationOptions o = base_2d(2);
    o.compile.vector_width = width;
    expect_fused_bitwise(make_two_phase(2), o, 4, 8);
  }
}

TEST(ThreadedStaticBitwise, PinnedStaticMatchesSerial) {
  // Static slab ownership + compact pinning + first-touch placement must
  // not perturb a single bit relative to the serial reference.
  GrandChemParams p = make_two_phase(2);
  GrandChemModel m(p);
  SimulationOptions serial;
  serial.cells = {40, 40, 1};
  serial.threads = 1;
  SimulationOptions par = serial;
  par.threads = 4;
  par.pin = support::PinPolicy::Compact;
  par.dispatch = Dispatch::Static;
  par.first_touch = true;
  Simulation s1(m, serial), s4(m, par);
  for (Simulation* s : {&s1, &s4}) init_disk(*s, 20, 20, 10);
  s1.run(15);
  s4.run(15);
  EXPECT_DOUBLE_EQ(Array::max_abs_diff(s1.phi(), s4.phi()), 0.0);
  EXPECT_DOUBLE_EQ(Array::max_abs_diff(s1.mu(), s4.mu()), 0.0);
}

TEST(ThreadedStaticBitwise, DynamicAndStaticDispatchAgree) {
  GrandChemParams p = make_two_phase(2);
  GrandChemModel m(p);
  SimulationOptions dyn;
  dyn.cells = {40, 32, 1};
  dyn.threads = 3;
  dyn.dispatch = Dispatch::Dynamic;
  SimulationOptions stat = dyn;
  stat.dispatch = Dispatch::Static;
  Simulation sd(m, dyn), ss(m, stat);
  for (Simulation* s : {&sd, &ss}) init_disk(*s, 20, 16, 9);
  sd.run(10);
  ss.run(10);
  EXPECT_DOUBLE_EQ(Array::max_abs_diff(sd.phi(), ss.phi()), 0.0);
}

TEST(BlockingPlanTest, OffModeCarriesReason) {
  GrandChemModel m(make_two_phase(2));
  SimulationOptions o;
  o.cells = {32, 32, 1};
  Simulation sim(m, o);
  EXPECT_FALSE(sim.blocking_active());
  EXPECT_FALSE(sim.blocking_plan().reason.empty());
}

TEST(BlockingPlanTest, ThinSlabsDisableFusion) {
  // 8 workers over 16 rows: each slab is thinner than the wavefront
  // prologue needs, so the schedule must fall back with a reason.
  GrandChemModel m(make_two_phase(2));
  SimulationOptions o;
  o.cells = {32, 16, 1};
  o.threads = 8;
  o.dispatch = Dispatch::Static;
  o.blocking = BlockingMode::Fixed;
  o.blocking_tile_rows = 2;
  Simulation sim(m, o);
  EXPECT_FALSE(sim.blocking_active());
  EXPECT_FALSE(sim.blocking_plan().reason.empty());
}

TEST(BlockingPlanTest, ReportThreadingSectionReflectsRun) {
  GrandChemModel m(make_two_phase(2));
  SimulationOptions o;
  o.cells = {40, 32, 1};
  o.threads = 2;
  o.dispatch = Dispatch::Static;
  o.blocking = BlockingMode::Fixed;
  o.blocking_tile_rows = 4;
  Simulation sim(m, o);
  init_disk(sim, 20, 16, 9);
  sim.run(4);
  const obs::ThreadingStats& t = sim.report().threading;
  EXPECT_EQ(t.threads, 2);
  EXPECT_EQ(t.dispatch, "static");
  EXPECT_GE(t.cpus, 1);
  if (sim.blocking_active()) {
    EXPECT_TRUE(t.blocking_enabled);
    EXPECT_EQ(t.blocking_tile_rows, 4);
    EXPECT_GT(t.fused_substeps, 0);
    EXPECT_GT(t.bytes_per_update_fused, 0.0);
  }
  // JSON export carries the section (schema v6)
  const obs::Json j = sim.report().to_json();
  EXPECT_NE(j.find("threading"), nullptr);
}

}  // namespace
}  // namespace pfc::app
