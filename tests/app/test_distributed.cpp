// Distributed-vs-single-block cross-validation: the strongest integration
// test of the runtime — a multi-rank, multi-block run must reproduce the
// single-block trajectory exactly (same kernels, same global coordinates).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>

#include "pfc/app/distributed.hpp"
#include "pfc/app/params.hpp"
#include "pfc/obs/report.hpp"

namespace pfc::app {
namespace {

double phi_init(long long x, long long y, long long, int c) {
  const double d = std::sqrt(double((x - 16) * (x - 16) + (y - 16) * (y - 16)));
  const double solid = interface_profile(d - 8.0, 10.0);
  return c == 1 ? solid : 1.0 - solid;
}

double mu_init(long long x, long long y, long long, int) {
  return 0.01 * std::sin(0.2 * double(x)) * std::cos(0.2 * double(y));
}

std::vector<double> reference_run(const GrandChemModel& model, int steps) {
  SimulationOptions o;
  o.cells = {32, 32, 1};
  Simulation sim(model, o);
  sim.init_phi(&phi_init);
  sim.init_mu(&mu_init);
  sim.run(steps);
  std::vector<double> out;
  for (int c = 0; c < sim.phi().components(); ++c) {
    for (long long y = 0; y < 32; ++y) {
      for (long long x = 0; x < 32; ++x) {
        out.push_back(sim.phi().at(x, y, 0, c));
      }
    }
  }
  return out;
}

TEST(DistributedTest, SerialMultiBlockMatchesSingleBlock) {
  GrandChemModel model(make_two_phase(2));
  const auto ref = reference_run(model, 10);

  DistributedOptions o;
  o.cells = {32, 32, 1};
  o.blocks_per_dim = {2, 2, 1};
  DistributedSimulation dist(model, o, nullptr);
  dist.init(&phi_init, &mu_init);
  dist.run(10);
  const auto got = dist.gather_phi();  // layout (x + 32(y + 32 z), c)

  ASSERT_EQ(got.size(), ref.size());
  double max_err = 0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    max_err = std::max(max_err, std::abs(got[i] - ref[i]));
  }
  EXPECT_LT(max_err, 1e-13);
}

TEST(DistributedTest, TwoRanksMatchSingleBlock) {
  GrandChemModel model(make_two_phase(2));
  const auto ref = reference_run(model, 8);

  mpi::run(2, [&](mpi::Comm& comm) {
    DistributedOptions o;
    o.cells = {32, 32, 1};
    o.blocks_per_dim = {2, 2, 1};
    DistributedSimulation dist(model, o, &comm);
    EXPECT_EQ(dist.num_local_blocks(), 2);
    dist.init(&phi_init, &mu_init);
    dist.run(8);
    const auto got = dist.gather_phi();
    ASSERT_EQ(got.size(), ref.size());
    double max_err = 0;
    for (std::size_t i = 0; i < got.size(); ++i) {
      max_err = std::max(max_err, std::abs(got[i] - ref[i]));
    }
    EXPECT_LT(max_err, 1e-13) << "rank " << comm.rank();
  });
}

TEST(DistributedTest, FourRanksConserveSimplexGlobally) {
  GrandChemModel model(make_two_phase(2));
  mpi::run(4, [&](mpi::Comm& comm) {
    DistributedOptions o;
    o.cells = {32, 32, 1};
    o.blocks_per_dim = {4, 2, 1};
    DistributedSimulation dist(model, o, &comm);
    dist.init(&phi_init, &mu_init);
    const obs::RunReport rep = dist.run(12);
    const double s0 = comm.allreduce_sum(dist.local_phi_sum(0));
    const double s1 = comm.allreduce_sum(dist.local_phi_sum(1));
    EXPECT_NEAR(s0 + s1, 32.0 * 32.0, 1e-8);
    // the report carries the communication volume of this rank
    EXPECT_GT(rep.exchange_bytes, 0u);
    EXPECT_EQ(rep.steps, 12);
    EXPECT_GT(rep.mlups(), 0.0);
    EXPECT_GE(rep.block_imbalance, 1.0);
  });
}

TEST(DistributedTest, SplitKernelsDistributedMatchReference) {
  GrandChemModel model(make_two_phase(2));
  const auto ref = reference_run(model, 6);
  DistributedOptions o;
  o.cells = {32, 32, 1};
  o.blocks_per_dim = {2, 1, 1};
  o.compile.split_phi = true;
  o.compile.split_mu = true;
  DistributedSimulation dist(model, o, nullptr);
  dist.init(&phi_init, &mu_init);
  dist.run(6);
  const auto got = dist.gather_phi();
  double max_err = 0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    max_err = std::max(max_err, std::abs(got[i] - ref[i]));
  }
  EXPECT_LT(max_err, 1e-9);
}

TEST(DistributedTest, RunZeroStepsYieldsZeroedReport) {
  GrandChemModel model(make_two_phase(2));
  DistributedOptions o;
  o.cells = {32, 32, 1};
  o.blocks_per_dim = {2, 2, 1};
  o.compile.backend = Backend::Interpreter;
  DistributedSimulation dist(model, o, nullptr);
  dist.init(&phi_init, &mu_init);
  const obs::RunReport rep = dist.run(0);
  EXPECT_EQ(rep.steps, 0);
  EXPECT_EQ(rep.cell_updates, 0u);
  EXPECT_EQ(rep.mlups(), 0.0);
  EXPECT_EQ(rep.kernel_seconds_total, 0.0);
  EXPECT_EQ(rep.block_imbalance, 0.0);
  EXPECT_TRUE(rep.kernel_timers.empty());
  EXPECT_EQ(rep.health.checks, 0);
  EXPECT_EQ(rep.num_blocks, 4);
  // init's ghost exchange is not a timed step: no drift entries yet
  EXPECT_EQ(rep.model_accuracy.count("exchange"), 0u);
}

TEST(DistributedTest, TracedHealthMonitoredMultiBlockRun) {
  GrandChemModel model(make_two_phase(2));
  DistributedOptions o;
  o.cells = {32, 32, 1};
  o.blocks_per_dim = {2, 2, 1};
  o.compile.backend = Backend::Interpreter;
  o.with_trace(obs::TraceOptions{}.enable().with_path(
      ::testing::TempDir() + "pfc_test_dist_trace.json"));
  o.with_health(obs::HealthOptions{}.enable());
  DistributedSimulation dist(model, o, nullptr);
  dist.init(&phi_init, &mu_init);
  const obs::RunReport rep = dist.run(3);

  EXPECT_EQ(rep.health.checks, 3);
  EXPECT_EQ(rep.health.total_violations(), 0u);
  for (const auto& [name, t] : rep.kernel_timers) {
    ASSERT_TRUE(rep.model_accuracy.count("kernel/" + name)) << name;
  }
  // a multi-block step exchanges ghosts, so the netmodel entry appears
  ASSERT_TRUE(rep.model_accuracy.count("exchange"));
  EXPECT_GT(rep.model_accuracy.at("exchange").predicted_seconds, 0.0);

  // per-block kernel spans and exchange spans land in the timeline
  std::set<double> blocks;
  std::size_t exchange_spans = 0;
  const obs::Json doc = dist.tracer().to_chrome_json();
  for (const obs::Json& e : doc.find("traceEvents")->elements()) {
    const std::string& cat = e.find("cat")->str();
    const obs::Json* args = e.find("args");
    if (cat == "kernel" && args != nullptr && args->find("block")) {
      blocks.insert(args->find("block")->number());
    }
    if (cat == "ghost") ++exchange_spans;
  }
  EXPECT_EQ(blocks.size(), 4u) << "every block must tag its kernel spans";
  EXPECT_EQ(exchange_spans, 6u) << "two exchanges per step";
  std::remove(
      (::testing::TempDir() + "pfc_test_dist_trace.json").c_str());
}

}  // namespace
}  // namespace pfc::app
