// Communication-hiding cross-validation: OverlapMode::InteriorFrontier
// (frontier first, nonblocking exchange, interior while messages fly) must
// reproduce the synchronous OverlapMode::Off trajectory bit-for-bit —
// fields, health scans and noise streams — on multi-rank, multi-block,
// split-kernel and threaded configurations.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "pfc/app/distributed.hpp"
#include "pfc/app/params.hpp"
#include "pfc/obs/report.hpp"

namespace pfc::app {
namespace {

double phi_init(long long x, long long y, long long, int c) {
  const double d = std::sqrt(double((x - 16) * (x - 16) + (y - 16) * (y - 16)));
  const double solid = interface_profile(d - 8.0, 10.0);
  return c == 1 ? solid : 1.0 - solid;
}

double mu_init(long long x, long long y, long long, int) {
  return 0.01 * std::sin(0.2 * double(x)) * std::cos(0.2 * double(y));
}

struct RunResult {
  std::vector<double> phi;
  obs::RunReport report;
  obs::HealthStats health;
};

RunResult run_mode(const GrandChemModel& model, DistributedOptions o,
                   OverlapMode mode, mpi::Comm* comm, int steps) {
  o.with_overlap(mode);
  DistributedSimulation dist(model, o, comm);
  dist.init(&phi_init, &mu_init);
  RunResult r;
  r.report = dist.run(steps);
  r.phi = dist.gather_phi();
  r.health = dist.health().stats();
  return r;
}

void expect_bitwise_equal(const RunResult& off, const RunResult& on) {
  ASSERT_EQ(off.phi.size(), on.phi.size());
  double max_err = 0;
  for (std::size_t i = 0; i < off.phi.size(); ++i) {
    max_err = std::max(max_err, std::abs(off.phi[i] - on.phi[i]));
  }
  EXPECT_EQ(max_err, 0.0) << "overlap must be bitwise-identical";
  EXPECT_EQ(off.health.checks, on.health.checks);
  EXPECT_EQ(off.health.total_violations(), on.health.total_violations());
  EXPECT_EQ(off.health.max_phase_sum_error, on.health.max_phase_sum_error);
  EXPECT_EQ(off.health.conservation_drift, on.health.conservation_drift);
}

TEST(DistributedOverlapTest, SerialMultiBlockBitwise) {
  GrandChemModel model(make_two_phase(2));
  DistributedOptions o;
  o.cells = {32, 32, 1};
  o.blocks_per_dim = {2, 2, 1};
  o.with_health(obs::HealthOptions{}.enable());
  const RunResult off = run_mode(model, o, OverlapMode::Off, nullptr, 10);
  const RunResult on =
      run_mode(model, o, OverlapMode::InteriorFrontier, nullptr, 10);
  expect_bitwise_equal(off, on);

  // the report's overlap block is filled only in overlap mode
  EXPECT_FALSE(off.report.overlap.enabled);
  EXPECT_TRUE(on.report.overlap.enabled);
  EXPECT_GT(on.report.overlap.frontier_seconds, 0.0);
  EXPECT_GT(on.report.overlap.interior_seconds, 0.0);
  EXPECT_GE(on.report.overlap.hidden_fraction, 0.0);
  EXPECT_LE(on.report.overlap.hidden_fraction, 1.0);
  // interior + frontier tile this rank's per-step dst lattice exactly
  const long long block_cells = 16 * 16;
  EXPECT_EQ(on.report.overlap.interior_cells + on.report.overlap.frontier_cells,
            4 * block_cells);
  EXPECT_GT(on.report.overlap.interior_cells, 0);
  EXPECT_GT(on.report.overlap.frontier_cells, 0);
  // both modes exchange the same ghost volume
  EXPECT_EQ(off.report.exchange_bytes, on.report.exchange_bytes);
}

TEST(DistributedOverlapTest, FourRanksBitwise) {
  GrandChemModel model(make_two_phase(2));
  DistributedOptions o;
  o.cells = {32, 32, 1};
  o.blocks_per_dim = {4, 2, 1};  // two blocks per rank: remote + local copies
  o.with_health(obs::HealthOptions{}.enable());
  mpi::run(4, [&](mpi::Comm& comm) {
    const RunResult off = run_mode(model, o, OverlapMode::Off, &comm, 10);
    const RunResult on =
        run_mode(model, o, OverlapMode::InteriorFrontier, &comm, 10);
    expect_bitwise_equal(off, on);
    EXPECT_EQ(off.report.exchange_bytes, on.report.exchange_bytes)
        << "rank " << comm.rank();
    EXPECT_TRUE(on.report.overlap.enabled);
  });
}

TEST(DistributedOverlapTest, SplitKernelsFourRanksBitwise) {
  // split staggered pipelines widen the flux kernel's frontier shell; the
  // width derivation from read-offset ranges must keep this bitwise too
  GrandChemModel model(make_two_phase(2));
  DistributedOptions o;
  o.cells = {32, 32, 1};
  o.blocks_per_dim = {2, 2, 1};
  o.compile.split_phi = true;
  o.compile.split_mu = true;
  mpi::run(4, [&](mpi::Comm& comm) {
    const RunResult off = run_mode(model, o, OverlapMode::Off, &comm, 10);
    const RunResult on =
        run_mode(model, o, OverlapMode::InteriorFrontier, &comm, 10);
    expect_bitwise_equal(off, on);
  });
}

TEST(DistributedOverlapTest, ThreadedInteriorBitwise) {
  GrandChemModel model(make_two_phase(2));
  DistributedOptions o;
  o.cells = {32, 32, 1};
  o.blocks_per_dim = {2, 2, 1};
  o.with_threads(4);
  mpi::run(2, [&](mpi::Comm& comm) {
    const RunResult off = run_mode(model, o, OverlapMode::Off, &comm, 10);
    const RunResult on =
        run_mode(model, o, OverlapMode::InteriorFrontier, &comm, 10);
    expect_bitwise_equal(off, on);
  });
}

TEST(DistributedOverlapTest, OverlapTimersAndTraceSpans) {
  GrandChemModel model(make_two_phase(2));
  DistributedOptions o;
  o.cells = {32, 32, 1};
  o.blocks_per_dim = {2, 2, 1};
  o.with_overlap(OverlapMode::InteriorFrontier);
  o.with_trace(obs::TraceOptions{}.enable().with_path(
      ::testing::TempDir() + "pfc_test_overlap_trace.json"));
  DistributedSimulation dist(model, o, nullptr);
  dist.init(&phi_init, &mu_init);
  const obs::RunReport rep = dist.run(3);

  // phase timers land in the overlap report block
  EXPECT_GT(rep.overlap.pack_seconds, 0.0);
  EXPECT_GT(rep.overlap.wait_seconds, 0.0);
  EXPECT_GT(rep.overlap.interior_seconds, 0.0);
  EXPECT_GT(rep.overlap.frontier_seconds, 0.0);
  // exchange accounting matches the synchronous path's structure: a serial
  // run moves ghosts by local copies only (no wire bytes), but the phase
  // time still lands in the exchange timer
  EXPECT_EQ(rep.exchange_bytes, 0u);
  EXPECT_GT(rep.exchange_seconds, 0.0);
  // per-kernel timers still carry one launch per block/kernel/step so the
  // drift layer's count x cells accounting stays valid
  for (const auto& [name, t] : rep.kernel_timers) {
    EXPECT_EQ(t.count, 3 * 4) << name;  // steps x blocks
  }

  // the four overlap phases appear as spans in the timeline
  int frontier = 0, interior = 0, pack = 0, wait = 0;
  const obs::Json doc = dist.tracer().to_chrome_json();
  for (const obs::Json& e : doc.find("traceEvents")->elements()) {
    const obs::Json* name = e.find("name");
    if (name == nullptr) continue;
    if (name->str() == "kernel.frontier") ++frontier;
    if (name->str() == "kernel.interior") ++interior;
    if (name->str() == "exchange.pack") ++pack;
    if (name->str() == "exchange.wait") ++wait;
  }
  EXPECT_EQ(frontier, 6);  // two groups x three steps
  EXPECT_EQ(interior, 6);
  EXPECT_EQ(pack, 6);
  EXPECT_EQ(wait, 6);
  std::remove(
      (::testing::TempDir() + "pfc_test_overlap_trace.json").c_str());
}

}  // namespace
}  // namespace pfc::app
