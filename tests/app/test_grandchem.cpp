// Model-assembly tests: the symbolic grand-chemical model, its variational
// structure and the generated kernels' properties.
#include <gtest/gtest.h>

#include "pfc/app/grandchem.hpp"
#include "pfc/app/params.hpp"
#include "pfc/ir/opcount.hpp"
#include "pfc/app/compiler.hpp"
#include "pfc/sym/subs.hpp"
#include "pfc/sym/simplify.hpp"

namespace pfc::app {
namespace {

TEST(ParamsTest, AllValidate) {
  EXPECT_NO_THROW(make_p1().validate());
  EXPECT_NO_THROW(make_p2().validate());
  EXPECT_NO_THROW(make_two_phase().validate());
  EXPECT_NO_THROW(make_p1(2).validate());
  EXPECT_NO_THROW(make_p2(2).validate());
}

TEST(ParamsTest, ValidationCatchesErrors) {
  GrandChemParams p = make_p1();
  p.fits.pop_back();
  EXPECT_THROW(p.validate(), Error);
  p = make_p1();
  p.liquid_phase = 9;
  EXPECT_THROW(p.validate(), Error);
  p = make_p1();
  p.dt = 0.0;
  EXPECT_THROW(p.validate(), Error);
}

/// Evaluates an expression numerically, treating every distinct Diff node
/// and field access as an independent pseudo-random variable.
double eval_with_random_leaves(const sym::Expr& e, unsigned seed) {
  // map distinct Diff nodes to numbers (outermost matches shadow inner ones)
  sym::SubsMap map;
  unsigned state = seed * 2654435761u + 17;
  const auto rnd = [&]() {
    state = state * 1664525u + 1013904223u;
    return 0.1 + double(state >> 20) / double(1u << 12);  // (0.1, 4.1)
  };
  sym::for_each(e, [&](const sym::Expr& node) {
    if (node->kind() != sym::Kind::Diff) return;
    for (const auto& [pat, rep] : map) {
      (void)rep;
      if (sym::equals(pat, node)) return;
    }
    map.emplace_back(node, sym::num(rnd() - 2.0));
  });
  sym::Expr bound = sym::substitute(e, map);
  sym::EvalContext ctx;
  ctx.symbols = {{"t", rnd()}};
  ctx.field_value = [&](const sym::Expr& fr) {
    // deterministic pseudo-random value per (field, offset, comp), kept in
    // (0,1) so that sqrt/max guards stay smooth
    std::size_t h = fr->hash();
    return 0.05 + double(h % 9001) / 10000.0;
  };
  ctx.symbols["x0"] = rnd();
  ctx.symbols["x1"] = rnd();
  ctx.symbols["x2"] = rnd();
  return sym::evaluate(bound, ctx);
}

TEST(GrandChemTest, LagrangeMultiplierBalancesPhases) {
  // sum over alpha of the deterministic rhs must vanish identically; checked
  // numerically on random field states (the expression is a rational
  // function, so pointwise zero on random inputs means identical zero)
  for (auto* make : {&make_two_phase, &make_p1, &make_p2}) {
    GrandChemModel m(make(2));
    fd::PdeUpdate pde = m.phi_update();
    sym::Expr sum = sym::add(pde.rhs);
    for (unsigned seed = 0; seed < 5; ++seed) {
      EXPECT_NEAR(eval_with_random_leaves(sum, seed), 0.0, 1e-9);
    }
  }
}

TEST(GrandChemTest, TemperatureFormP1) {
  GrandChemModel m(make_p1(3));
  sym::Expr T = m.temperature();
  // depends on z and t, not on x or y
  EXPECT_TRUE(sym::contains(T, sym::coord(2)));
  EXPECT_TRUE(sym::contains(T, sym::time()));
  EXPECT_FALSE(sym::contains(T, sym::coord(0)));
  EXPECT_FALSE(sym::contains(T, sym::coord(1)));
}

TEST(GrandChemTest, MuUpdateReadsPhiDst) {
  // Algorithm 1: the mu kernel consumes both phi_src and phi_dst
  GrandChemModel m(make_p1(2));
  fd::PdeUpdate pde = m.mu_update();
  bool reads_src = false, reads_dst = false;
  for (const auto& r : pde.rhs) {
    for (const auto& fr : sym::field_refs(r)) {
      reads_src = reads_src || fr->field()->id() == m.phi_src()->id();
      reads_dst = reads_dst || fr->field()->id() == m.phi_dst()->id();
    }
  }
  EXPECT_TRUE(reads_src);
  EXPECT_TRUE(reads_dst);
}

TEST(GrandChemTest, AntiTrappingBringsSqrtAndRsqrt) {
  GrandChemModel m(make_p1(3));
  ModelCompiler mc;
  fd::DiscretizeOptions dopts;
  dopts.dims = 3;
  std::optional<FieldPtr> flux;
  auto kernels = ModelCompiler::lower(m.mu_update(), dopts, CompileOptions{},
                                      &flux);
  ASSERT_EQ(kernels.size(), 1u);
  const auto ops = ir::count_ops(kernels[0]);
  EXPECT_GT(ops.sqrts, 0) << "sqrt(phi_a phi_l) terms expected";
  EXPECT_GT(ops.rsqrts, 0) << "gradient normals expected";
  EXPECT_GT(ops.divs, 0);
}

TEST(GrandChemTest, P2PhiKernelIsMuchHeavierThanP1) {
  // the paper's headline observation: anisotropy explodes the phi kernel
  fd::DiscretizeOptions d2;
  d2.dims = 3;
  std::optional<FieldPtr> flux;
  GrandChemModel m1(make_p1(3));
  GrandChemModel m2(make_p2(3));
  auto k1 = ModelCompiler::lower(m1.phi_update(), d2, CompileOptions{}, &flux);
  auto k2 = ModelCompiler::lower(m2.phi_update(), d2, CompileOptions{}, &flux);
  const long f1 = ir::count_ops(k1[0]).normalized_flops();
  const long f2 = ir::count_ops(k2[0]).normalized_flops();
  EXPECT_GT(f2, 2 * f1) << "P2 phi " << f2 << " vs P1 phi " << f1;
}

TEST(GrandChemTest, NoiseAppearsOnlyWhenEnabled) {
  GrandChemParams p = make_two_phase(2);
  p.noise_amplitude = 0.0;
  GrandChemModel quiet(p);
  p.noise_amplitude = 0.05;
  GrandChemModel noisy(p);
  const auto has_random = [](const fd::PdeUpdate& u) {
    for (const auto& r : u.rhs) {
      bool found = false;
      sym::for_each(r, [&](const sym::Expr& e) {
        found = found || e->kind() == sym::Kind::Random;
      });
      if (found) return true;
    }
    return false;
  };
  EXPECT_FALSE(has_random(quiet.phi_update()));
  EXPECT_TRUE(has_random(noisy.phi_update()));
}

TEST(GrandChemTest, ConfigParameterCount) {
  // paper §5.1: the driving force needs 2(N^2+N+1)-ish parameters; with
  // mobilities > 50 material quantities for P1. Sanity-check our fits hold
  // that much information.
  const GrandChemParams p = make_p1();
  const int n_mu = p.num_mu();
  // per phase: A0,A1 (sym, n(n+1)/2 each), B0,B1 (n each), C0,C1
  const int per_phase = 2 * (n_mu * (n_mu + 1) / 2) + 2 * n_mu + 2;
  const int total = per_phase * p.phases + p.phases * (p.phases - 1) +
                    p.phases;  // + gammas/taus + diffusivities
  EXPECT_GT(total, 50);
}

TEST(CompilerTest, SplitProducesTwoKernelsPerPde) {
  GrandChemModel m(make_two_phase(2));
  CompileOptions co;
  co.backend = Backend::Interpreter;
  co.split_phi = true;
  co.split_mu = true;
  ModelCompiler mc(co);
  CompiledModel cm = mc.compile(m);
  // 2D: one staggered sweep per axis + the consumer kernel
  EXPECT_EQ(cm.phi_kernels.size(), 3u);
  EXPECT_EQ(cm.mu_kernels.size(), 3u);
  EXPECT_TRUE(cm.phi_flux_field.has_value());
  EXPECT_TRUE(cm.mu_flux_field.has_value());
}

TEST(CompilerTest, JitSourceContainsBothKernels) {
  GrandChemModel m(make_two_phase(2));
  CompileOptions co;
  ModelCompiler mc(co);
  CompiledModel cm = mc.compile(m);
  EXPECT_NE(cm.generated_source().find("phi_full"), std::string::npos);
  EXPECT_NE(cm.generated_source().find("mu_full"), std::string::npos);
  const obs::CompileReport& cr = cm.compile_report();
  EXPECT_GT(cr.compile_seconds(), 0.0);
  EXPECT_GT(cr.generation_seconds(), 0.0);
  EXPECT_GT(cr.ops_per_cell_pre, 0);
  EXPECT_GE(cr.ops_per_cell_pre, cr.ops_per_cell_post)
      << "CSE + hoisting must not increase per-cell op counts";
  // kernel_names carry the IR names; the generated C entry points are the
  // sanitized ("phi_full") forms checked above
  ASSERT_EQ(cr.kernel_names.size(), 2u);
  EXPECT_EQ(cr.kernel_names[0], "phi-full");
  EXPECT_EQ(cr.kernel_names[1], "mu-full");
}

}  // namespace
}  // namespace pfc::app
