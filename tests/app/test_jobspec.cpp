// Options JSON round-trips (the serve daemon's lossless-config contract)
// and the pfc-jobspec-v1 schema: strict decoding, validation, and the
// deterministic run_job engine.
#include <gtest/gtest.h>

#include <string>

#include "pfc/app/distributed.hpp"
#include "pfc/app/jobspec.hpp"
#include "pfc/app/options_json.hpp"
#include "pfc/app/simulation.hpp"
#include "pfc/obs/json.hpp"

namespace pfc::app {
namespace {

using obs::Json;

/// Field-for-field equality via the lossless JSON form: to_json writes
/// every member, so equal JSON means equal options.
void expect_roundtrip(const SimulationOptions& opts) {
  const Json j = simulation_options_to_json(opts);
  const SimulationOptions back = simulation_options_from_json(j, "opts");
  EXPECT_TRUE(j == simulation_options_to_json(back)) << j.dump(2);
}

void expect_roundtrip(const DistributedOptions& opts) {
  const Json j = distributed_options_to_json(opts);
  const DistributedOptions back = distributed_options_from_json(j, "opts");
  EXPECT_TRUE(j == distributed_options_to_json(back)) << j.dump(2);
}

TEST(OptionsJson, DefaultsRoundTrip) {
  expect_roundtrip(SimulationOptions{});
  expect_roundtrip(DistributedOptions{});
}

// The exact presets the examples construct (quickstart single, quickstart
// --overlap, distributed_demo) survive to_json -> from_json unchanged.
TEST(OptionsJson, ExamplePresetsRoundTrip) {
  auto health = obs::HealthOptions{}.enable().every(100);

  auto quickstart = SimulationOptions{}.with_cells(128, 128).with_health(health);
  quickstart.threads = 4;
  quickstart.with_trace(obs::TraceOptions{}.enable().with_path("trace.json"));
  quickstart.with_resilience(resilience::ResilienceOptions{}.every(50).with_directory(
      "quickstart_ckpt"));
  expect_roundtrip(quickstart);

  auto overlap = DistributedOptions{}
                     .with_cells(128, 128)
                     .with_blocks(2, 2)
                     .with_overlap(OverlapMode::InteriorFrontier)
                     .with_threads(4)
                     .with_health(health);
  expect_roundtrip(overlap);

  auto demo = DistributedOptions{}
                  .with_cells(96, 96)
                  .with_blocks(2, 2)
                  .with_health(obs::HealthOptions{}.enable().with_policy(
                      obs::HealthPolicy::Throw))
                  .with_overlap(OverlapMode::InteriorFrontier)
                  .with_threads(2);
  expect_roundtrip(demo);
}

TEST(OptionsJson, EveryFieldSurvives) {
  SimulationOptions opts;
  opts.cells = {48, 32, 4};
  opts.boundary = grid::BoundaryKind::ZeroGradient;
  opts.threads = 3;
  opts.time_scheme = TimeScheme::Heun;
  opts.block_offset = {8, 16, 0};
  opts.compile.backend = Backend::Interpreter;
  opts.compile.split_phi = true;
  opts.compile.split_mu = true;
  opts.compile.fast_math = true;
  opts.compile.cse = false;
  opts.compile.hoist_invariants = false;
  opts.compile.clamp_phi = false;
  opts.compile.schedule = true;
  opts.compile.schedule_beam_width = 7;
  opts.compile.vector_width = 8;
  opts.compile.streaming_stores = true;
  opts.compile.jit_extra_flags = "-ffp-contract=off";
  opts.compile.fail_jit_attempts = 2;
  opts.compile.cache_dir = "/tmp/pfc_cache";
  opts.compile.cache_max_bytes = 1234567;
  opts.trace.enabled = true;
  opts.trace.sample_every = 5;
  opts.trace.max_events = 999;
  opts.trace.path = "t.json";
  opts.health.enabled = true;
  opts.health.every_n_steps = 7;
  opts.health.policy = obs::HealthPolicy::Recover;
  opts.health.phase_sum_tol = 1e-7;
  opts.machine = perf::MachineModel::by_name("zen2");
  opts.machine.cores = 48;
  opts.resilience.checkpoint_every = 11;
  opts.resilience.directory = "ckpt";
  opts.resilience.restart_from = "ckpt_old";
  opts.resilience.max_retries = 5;
  opts.resilience.dt_shrink = 0.5;
  opts.resilience.faults.nan_step = 13;
  opts.resilience.faults.nan_cell = {1, 2, 3};
  opts.resilience.faults.fail_jit_attempts = 1;
  opts.resilience.faults.truncate_checkpoint = true;
  expect_roundtrip(opts);

  DistributedOptions dopts;
  dopts.cells = {96, 96, 1};
  dopts.blocks_per_dim = {4, 2, 1};
  dopts.overlap = OverlapMode::InteriorFrontier;
  dopts.threads = 2;
  dopts.compile.fast_math = true;
  expect_roundtrip(dopts);
}

TEST(OptionsJson, MachinePresetStringAccepted) {
  Json j = simulation_options_to_json(SimulationOptions{});
  j.set("machine", Json("zen2"));
  const SimulationOptions back = simulation_options_from_json(j, "opts");
  EXPECT_EQ(back.machine.name, perf::MachineModel::by_name("zen2").name);
}

TEST(OptionsJson, UnknownKeyNamesThePath) {
  Json j = simulation_options_to_json(SimulationOptions{});
  j.set("bogus_knob", Json(1.0));
  try {
    simulation_options_from_json(j, "opts");
    FAIL() << "unknown key must be rejected";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("bogus_knob"), std::string::npos)
        << e.what();
  }
}

TEST(OptionsJson, TypeMismatchNamesThePath) {
  Json j = simulation_options_to_json(SimulationOptions{});
  j.set("threads", Json("four"));
  try {
    simulation_options_from_json(j, "opts");
    FAIL() << "type mismatch must be rejected";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("threads"), std::string::npos)
        << e.what();
  }
}

TEST(OptionsJson, BadEnumRejected) {
  Json j = compile_options_to_json(CompileOptions{});
  j.set("backend", Json("fortran"));
  EXPECT_THROW(compile_options_from_json(j, "compile"), Error);
}

TEST(JobSpec, RoundTripsLosslessly) {
  JobSpec spec;
  spec.name = "roundtrip";
  spec.steps = 42;
  spec.mode = "distributed";
  spec.model.preset = "p1";
  spec.model.dims = 3;
  spec.model.dt = 0.005;
  spec.model.rng_seed = 7;  // epsilon/noise left unset: absence round-trips
  spec.initial.kind = "uniform";
  spec.initial.solid_phase = 0;
  spec.distributed.threads = 2;

  const Json j = spec.to_json();
  const JobSpec back = JobSpec::from_json(j);
  EXPECT_TRUE(j == back.to_json()) << j.dump(2);
  EXPECT_TRUE(back.model.dt.has_value());
  EXPECT_FALSE(back.model.epsilon.has_value());
}

TEST(JobSpec, RequiresSchemaTag) {
  Json j = JobSpec{}.to_json();
  j.set("schema", Json("pfc-jobspec-v0"));
  EXPECT_THROW(JobSpec::from_json(j), Error);
  EXPECT_THROW(JobSpec::parse("{}"), Error);
  EXPECT_THROW(JobSpec::parse("not json"), Error);
}

TEST(JobSpec, ValidateRejectsBadValues) {
  {
    JobSpec s;
    s.model.preset = "unknown_model";
    EXPECT_THROW(s.validate(), Error);
  }
  {
    JobSpec s;
    s.mode = "mpi";
    EXPECT_THROW(s.validate(), Error);
  }
  {
    JobSpec s;
    s.model.dt = -0.5;
    EXPECT_THROW(s.validate(), Error);
  }
  {
    JobSpec s;
    s.initial.radius_fraction = 0.9;
    EXPECT_THROW(s.validate(), Error);
  }
}

TEST(JobSpec, MakeParamsAppliesOverrides) {
  JobSpec spec;
  spec.model.preset = "two_phase";
  spec.model.dims = 2;
  spec.model.dt = 0.004;
  spec.model.epsilon = 3.0;
  spec.model.rng_seed = 99;
  const GrandChemParams p = spec.make_params();
  EXPECT_EQ(p.dims, 2);
  EXPECT_DOUBLE_EQ(p.dt, 0.004);
  EXPECT_DOUBLE_EQ(p.epsilon, 3.0);
  EXPECT_EQ(p.rng_seed, 99u);

  JobSpec bad = spec;
  bad.initial.solid_phase = 99;  // >= p.phases
  EXPECT_THROW(bad.make_params(), Error);
}

TEST(JobSpec, RunJobIsDeterministic) {
  JobSpec spec;
  spec.name = "det";
  spec.steps = 2;
  spec.simulation.cells = {16, 16, 1};
  spec.simulation.compile.backend = Backend::Interpreter;

  const JobResult a = run_job(spec);
  const JobResult b = run_job(spec);
  EXPECT_EQ(a.steps, 2);
  EXPECT_EQ(a.run.steps, 2);
  EXPECT_NE(a.phi_checksum, 0u);
  EXPECT_EQ(a.phi_checksum, b.phi_checksum);
  EXPECT_EQ(a.mu_checksum, b.mu_checksum);

  const Json j = a.to_json();
  ASSERT_NE(j.find("phi_fnv1a64"), nullptr);
  EXPECT_EQ(j.find("phi_fnv1a64")->str().size(), 16u);
}

}  // namespace
}  // namespace pfc::app
