// Physics-level integration tests of the full pipeline: run real models and
// verify conservation laws and interface dynamics.
#include <gtest/gtest.h>

#include <cmath>

#include "pfc/app/analysis.hpp"
#include "pfc/app/params.hpp"
#include "pfc/app/simulation.hpp"

namespace pfc::app {
namespace {

SimulationOptions small_2d(long long nx, long long ny,
                           Backend backend = Backend::Jit) {
  SimulationOptions o;
  o.cells = {nx, ny, 1};
  o.compile.backend = backend;
  return o;
}

void init_circle(Simulation& sim, double cx, double cy, double r,
                 double eps) {
  // equilibrium obstacle-potential profile width is ~pi^2 eps / 4
  const double width = 2.5 * eps;
  sim.init_phi([&](long long x, long long y, long long, int c) {
    const double d =
        std::sqrt((x - cx) * (x - cx) + (y - cy) * (y - cy)) - r;
    const double solid = interface_profile(d, width);
    return c == 1 ? solid : 1.0 - solid;
  });
  sim.init_mu([](long long, long long, long long, int) { return 0.0; });
}

TEST(SimulationPhysicsTest, GibbsSimplexPreserved) {
  GrandChemParams p = make_two_phase(2);
  GrandChemModel m(p);
  Simulation sim(m, small_2d(48, 48));
  init_circle(sim, 24, 24, 12, p.epsilon);
  sim.run(100);
  const PhaseStats s = phase_statistics(sim.phi());
  EXPECT_LT(s.simplex_violation, 1e-9)
      << "Lagrange multiplier + clamp must keep sum phi = 1";
}

TEST(SimulationPhysicsTest, ShrinkingCircleMeanCurvature) {
  // Mean-curvature flow: area of a shrinking disk decreases linearly in
  // time, dA/dt = -2 pi M_int (independent of radius).
  GrandChemParams p = make_two_phase(2);
  GrandChemModel m(p);
  Simulation sim(m, small_2d(96, 96));
  init_circle(sim, 48, 48, 30, p.epsilon);
  sim.run(150);  // relax the profile toward equilibrium before measuring

  const double a0 = phase_statistics(sim.phi()).fractions[1] * 96 * 96;
  sim.run(300);
  const double a1 = phase_statistics(sim.phi()).fractions[1] * 96 * 96;
  sim.run(300);
  const double a2 = phase_statistics(sim.phi()).fractions[1] * 96 * 96;

  EXPECT_LT(a1, a0) << "disk must shrink under curvature flow";
  EXPECT_LT(a2, a1);
  // linear area decrease: the two decrements agree to ~15 %
  const double d1 = a0 - a1, d2 = a1 - a2;
  EXPECT_NEAR(d2 / d1, 1.0, 0.15)
      << "dA/dt should be radius-independent (d1=" << d1 << ", d2=" << d2
      << ")";
}

TEST(SimulationPhysicsTest, PlanarInterfaceStationaryWithoutDriving) {
  // with symmetric fits a flat interface has no curvature and no driving
  // force: it must not move
  GrandChemParams p = make_two_phase(2);
  GrandChemModel m(p);
  Simulation sim(m, small_2d(64, 32));
  sim.init_phi([&](long long x, long long, long long, int c) {
    const double solid =
        interface_profile(double(x) - 32.0, 2.5 * p.epsilon);
    return c == 1 ? solid : 1.0 - solid;
  });
  sim.init_mu([](long long, long long, long long, int) { return 0.0; });
  const double f0 = phase_statistics(sim.phi()).fractions[1];
  sim.run(200);  // any residual motion here is profile relaxation
  const double f1 = phase_statistics(sim.phi()).fractions[1];
  sim.run(200);
  const double f2 = phase_statistics(sim.phi()).fractions[1];
  EXPECT_NEAR(f0, f1, 0.03) << "flat interface moved more than ~2 cells";
  EXPECT_NEAR(f1, f2, 2e-3) << "flat interface keeps drifting";
}

TEST(SimulationPhysicsTest, MassConservationWithPeriodicBoundary) {
  // total concentration integral changes only through the non-divergence
  // source terms; with a *stationary* phi (two_phase flat profile) and
  // periodic boundaries the mu equation is a pure conservation law.
  GrandChemParams p = make_two_phase(2);
  GrandChemModel m(p);
  Simulation sim(m, small_2d(48, 48));
  sim.init_phi([&](long long, long long, long long, int c) {
    return c == 0 ? 1.0 : 0.0;  // uniform liquid: no interface motion
  });
  sim.init_mu([](long long x, long long y, long long, int) {
    return 0.1 * std::sin(2.0 * M_PI * x / 48.0) *
           std::cos(2.0 * M_PI * y / 48.0);
  });
  const auto c0 = total_concentration(m, sim.phi(), sim.mu(), sim.time());
  sim.run(100);
  const auto c1 = total_concentration(m, sim.phi(), sim.mu(), sim.time());
  ASSERT_EQ(c0.size(), c1.size());
  EXPECT_NEAR(c0[0], c1[0], 1e-8 * std::max(1.0, std::abs(c0[0])));
  // and the mu field must have diffused toward uniformity
  double max_mu = 0;
  for (long long y = 0; y < 48; ++y) {
    for (long long x = 0; x < 48; ++x) {
      max_mu = std::max(max_mu, std::abs(sim.mu().at(x, y, 0)));
    }
  }
  EXPECT_LT(max_mu, 0.1);
}

TEST(SimulationPhysicsTest, JitAndInterpreterTrajectoriesAgree) {
  GrandChemParams p = make_two_phase(2);
  GrandChemModel m(p);
  Simulation sim_jit(m, small_2d(32, 32, Backend::Jit));
  Simulation sim_int(m, small_2d(32, 32, Backend::Interpreter));
  for (Simulation* s : {&sim_jit, &sim_int}) {
    init_circle(*s, 16, 16, 8, p.epsilon);
  }
  sim_jit.run(25);
  sim_int.run(25);
  EXPECT_LT(Array::max_abs_diff(sim_jit.phi(), sim_int.phi()), 1e-9);
  EXPECT_LT(Array::max_abs_diff(sim_jit.mu(), sim_int.mu()), 1e-9);
}

TEST(SimulationPhysicsTest, SplitAndFullKernelsSameTrajectory) {
  GrandChemParams p = make_two_phase(2);
  GrandChemModel m(p);
  SimulationOptions full = small_2d(32, 32);
  SimulationOptions split = small_2d(32, 32);
  split.compile.split_phi = true;
  split.compile.split_mu = true;
  Simulation sim_full(m, full);
  Simulation sim_split(m, split);
  for (Simulation* s : {&sim_full, &sim_split}) {
    init_circle(*s, 16, 16, 8, p.epsilon);
  }
  sim_full.run(20);
  sim_split.run(20);
  EXPECT_LT(Array::max_abs_diff(sim_full.phi(), sim_split.phi()), 1e-9);
  EXPECT_LT(Array::max_abs_diff(sim_full.mu(), sim_split.mu()), 1e-9);
}

TEST(SimulationPhysicsTest, ThreadedTrajectoryMatchesSerial) {
  GrandChemParams p = make_two_phase(2);
  GrandChemModel m(p);
  SimulationOptions serial = small_2d(40, 40);
  SimulationOptions par = small_2d(40, 40);
  par.threads = 4;
  Simulation s1(m, serial), s4(m, par);
  for (Simulation* s : {&s1, &s4}) init_circle(*s, 20, 20, 10, p.epsilon);
  s1.run(15);
  s4.run(15);
  EXPECT_DOUBLE_EQ(Array::max_abs_diff(s1.phi(), s4.phi()), 0.0);
}

TEST(SimulationPhysicsTest, P1DirectionalSolidificationAdvances) {
  // small 2D P1 run: solid grows upward against the pulled gradient
  GrandChemParams p = make_p1(2);
  p.dt = 0.005;
  GrandChemModel m(p);
  SimulationOptions o = small_2d(32, 96);
  o.boundary = grid::BoundaryKind::ZeroGradient;
  Simulation sim(m, o);
  // three solid lamellae at the bottom, melt above
  sim.init_phi([&](long long x, long long y, long long, int c) {
    const double front = interface_profile(double(y) - 12.0, 2.5 * p.epsilon);
    if (c == 0) return 1.0 - front;
    const int lamella = 1 + int((x * 3) / 32) % 3;
    return c == lamella ? front : 0.0;
  });
  sim.init_mu([](long long, long long, long long, int) { return 0.0; });

  const long long front0 = front_position(sim.phi(), 0, 1);
  sim.run(400);
  const long long front1 = front_position(sim.phi(), 0, 1);
  const PhaseStats s = phase_statistics(sim.phi());
  EXPECT_LT(s.simplex_violation, 1e-6);
  EXPECT_GE(front1, front0) << "solid front must not retreat";
  // all three solid phases still alive
  for (int c = 1; c <= 3; ++c) {
    EXPECT_GT(s.fractions[std::size_t(c)], 0.005)
        << "phase " << c << " vanished";
  }
  // nothing blew up
  for (long long y = 0; y < 96; ++y) {
    for (long long x = 0; x < 32; ++x) {
      ASSERT_TRUE(std::isfinite(sim.mu().at(x, y, 0, 0)));
      ASSERT_TRUE(std::isfinite(sim.phi().at(x, y, 0, 0)));
    }
  }
}

TEST(SimulationPhysicsTest, P2DendriteTipGrows) {
  GrandChemParams p = make_p2(2);
  p.dt = 0.005;
  p.noise_amplitude = 0.0;  // deterministic for the test
  GrandChemModel m(p);
  SimulationOptions o = small_2d(48, 64);
  o.boundary = grid::BoundaryKind::ZeroGradient;
  Simulation sim(m, o);
  sim.init_phi([&](long long x, long long y, long long, int c) {
    const double d =
        std::sqrt(double((x - 24) * (x - 24) + y * y)) - 8.0;
    const double seed = interface_profile(d, 2.5 * p.epsilon);
    if (c == 0) return 1.0 - seed;
    return c == 1 ? seed : 0.0;
  });
  sim.init_mu([](long long, long long, long long, int) { return 0.0; });
  const double solid0 = phase_statistics(sim.phi()).fractions[1];
  sim.run(300);
  const double solid1 = phase_statistics(sim.phi()).fractions[1];
  EXPECT_GT(solid1, solid0) << "undercooled seed must grow";
  EXPECT_LT(phase_statistics(sim.phi()).simplex_violation, 1e-6);
}

TEST(SimulationTest, MlupsAccounting) {
  GrandChemParams p = make_two_phase(2);
  GrandChemModel m(p);
  Simulation sim(m, small_2d(32, 32));
  init_circle(sim, 16, 16, 8, p.epsilon);
  // guarded before any step and for run(0)
  EXPECT_EQ(sim.report().mlups(), 0.0);
  EXPECT_EQ(sim.run(0).mlups(), 0.0);
  const obs::RunReport rep = sim.run(5);
  EXPECT_GT(rep.mlups(), 0.0);
  EXPECT_EQ(rep.steps, 5);
  EXPECT_EQ(rep.cell_updates, 5u * 32u * 32u);
  EXPECT_FALSE(rep.kernel_timers.empty());
  EXPECT_EQ(sim.step_count(), 5);
  EXPECT_NEAR(sim.time(), 5 * p.dt, 1e-12);

  // the report is the single source of kernel timings
  for (const auto& [name, t] : rep.kernel_timers) {
    EXPECT_GE(t.seconds, 0.0) << name;
    EXPECT_GT(t.count, 0u) << name;
  }
}

}  // namespace
}  // namespace pfc::app
