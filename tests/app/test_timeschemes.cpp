// Temporal and spatial discretization-order extensions: Heun (RK2) time
// stepping and 4th-order central differences.
#include <gtest/gtest.h>

#include <cmath>

#include "pfc/app/params.hpp"
#include "pfc/app/simulation.hpp"
#include "pfc/fd/discretize.hpp"
#include "pfc/sym/simplify.hpp"

namespace pfc::app {
namespace {

/// Pure diffusion testbed: uniform liquid phi, so the mu equation reduces
/// to du/dt = D lap(u) with D = 1. Returns the max error against the exact
/// decay of the *discrete* Laplacian eigenmode after `steps` of size dt.
double diffusion_mode_error(TimeScheme scheme, double dt, int steps) {
  GrandChemParams p = make_two_phase(2);
  p.dt = dt;
  GrandChemModel m(p);
  SimulationOptions o;
  o.cells = {32, 32, 1};
  o.time_scheme = scheme;
  Simulation sim(m, o);
  sim.init_phi([](long long, long long, long long, int c) {
    return c == 0 ? 1.0 : 0.0;
  });
  const double kx = 2.0 * M_PI / 32.0;
  sim.init_mu([&](long long x, long long, long long, int) {
    return 0.05 * std::sin(kx * double(x));
  });
  sim.run(steps);
  // discrete Laplacian eigenvalue of the sine mode (dx = 1)
  const double lambda = -(2.0 - 2.0 * std::cos(kx));
  const double factor = std::exp(lambda * dt * steps);
  double err = 0;
  for (long long x = 0; x < 32; ++x) {
    const double exact = 0.05 * std::sin(kx * double(x)) * factor;
    err = std::max(err, std::abs(sim.mu().at(x, 7, 0) - exact));
  }
  return err;
}

TEST(TimeSchemeTest, HeunBeatsEulerAtSameStep) {
  const double e_euler = diffusion_mode_error(TimeScheme::Euler, 0.1, 40);
  const double e_heun = diffusion_mode_error(TimeScheme::Heun, 0.1, 40);
  EXPECT_LT(e_heun, e_euler / 5.0)
      << "euler " << e_euler << " vs heun " << e_heun;
}

TEST(TimeSchemeTest, EulerIsFirstOrder) {
  // halving dt (same total time) halves the error
  const double e1 = diffusion_mode_error(TimeScheme::Euler, 0.1, 40);
  const double e2 = diffusion_mode_error(TimeScheme::Euler, 0.05, 80);
  EXPECT_NEAR(e1 / e2, 2.0, 0.4);
}

TEST(TimeSchemeTest, HeunIsSecondOrder) {
  const double e1 = diffusion_mode_error(TimeScheme::Heun, 0.1, 40);
  const double e2 = diffusion_mode_error(TimeScheme::Heun, 0.05, 80);
  EXPECT_NEAR(e1 / e2, 4.0, 1.0);
}

TEST(TimeSchemeTest, HeunPreservesSimplexAndMass) {
  GrandChemParams p = make_two_phase(2);
  GrandChemModel m(p);
  SimulationOptions o;
  o.cells = {32, 32, 1};
  o.time_scheme = TimeScheme::Heun;
  Simulation sim(m, o);
  sim.init_phi([&](long long x, long long y, long long, int c) {
    const double d =
        std::sqrt(double((x - 16) * (x - 16) + (y - 16) * (y - 16))) - 8.0;
    const double s = interface_profile(d, 10.0);
    return c == 1 ? s : 1.0 - s;
  });
  sim.init_mu([](long long, long long, long long, int) { return 0.0; });
  sim.run(30);
  double max_sum_err = 0;
  for (long long y = 0; y < 32; ++y) {
    for (long long x = 0; x < 32; ++x) {
      const double s = sim.phi().at(x, y, 0, 0) + sim.phi().at(x, y, 0, 1);
      max_sum_err = std::max(max_sum_err, std::abs(s - 1.0));
    }
  }
  EXPECT_LT(max_sum_err, 1e-12);
}

}  // namespace
}  // namespace pfc::app

namespace pfc::fd {
namespace {

TEST(FourthOrderTest, FirstDerivativeConvergence) {
  auto f = Field::create("ho", 2, 1);
  sym::Expr d1 = sym::diff_op(sym::at(f), 0);
  const auto stencil_error = [&](int order, double h) {
    DiscretizeOptions o;
    o.dims = 2;
    o.dx = h;
    o.order = order;
    sym::Expr st = discretize_expression(d1, o);
    sym::EvalContext ctx;
    ctx.symbols = {{"x0", 0.0}, {"x1", 0.0}, {"x2", 0.0}};
    ctx.field_value = [&](const sym::Expr& fr) {
      return std::sin(0.9 * (0.3 + fr->offset()[0] * h));
    };
    const double exact = 0.9 * std::cos(0.9 * 0.3);
    return std::abs(sym::evaluate(st, ctx) - exact);
  };
  // order 2: error ratio ~4 when halving h; order 4: ~16
  const double r2 = stencil_error(2, 0.02) / stencil_error(2, 0.01);
  const double r4 = stencil_error(4, 0.02) / stencil_error(4, 0.01);
  EXPECT_NEAR(r2, 4.0, 0.5);
  EXPECT_NEAR(r4, 16.0, 2.0);
}

TEST(FourthOrderTest, WiderStencilRadius) {
  auto f = Field::create("ho2", 2, 1);
  PdeUpdate pde;
  pde.name = "ho2";
  pde.src = f;
  pde.dst = Field::create("ho2_dst", 2, 1);
  pde.rhs = {sym::diff_op(sym::at(f), 0)};
  DiscretizeOptions o;
  o.dims = 2;
  o.order = 4;
  const auto r = discretize(pde, o);
  EXPECT_EQ(access_radius(r.kernels[0])[0], 2);
}

}  // namespace
}  // namespace pfc::fd
