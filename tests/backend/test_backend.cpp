// End-to-end backend tests: C emission, JIT compilation, interpreter, and
// differential agreement between all execution paths.
#include <gtest/gtest.h>

#include <cmath>

#include "pfc/backend/c_emitter.hpp"
#include "pfc/backend/cuda_emitter.hpp"
#include "pfc/backend/interp.hpp"
#include "pfc/backend/jit.hpp"
#include "pfc/backend/kernel_runner.hpp"
#include "pfc/ir/passes.hpp"
#include "pfc/fd/discretize.hpp"
#include "pfc/ir/kernel.hpp"
#include "pfc/rng/philox.hpp"

namespace pfc::backend {
namespace {

using sym::Expr;
using sym::num;

struct DiffusionSetup {
  FieldPtr src, dst;
  ir::Kernel kernel;
};

DiffusionSetup make_diffusion_kernel(int dims, bool with_noise = false) {
  static int counter = 0;
  const std::string suffix = std::to_string(counter++);
  auto src = Field::create("u_src" + suffix, dims, 1);
  auto dst = Field::create("u_dst" + suffix, dims, 1);
  fd::PdeUpdate pde;
  pde.name = "diffuse" + suffix;
  pde.src = src;
  pde.dst = dst;
  Expr lap = num(0);
  for (int d = 0; d < dims; ++d) {
    lap = lap + sym::diff_op(sym::diff_op(sym::at(src), d), d);
  }
  Expr rhs = 0.1 * lap;
  if (with_noise) rhs = rhs + 0.01 * sym::random_uniform(0);
  pde.rhs = {rhs};
  fd::DiscretizeOptions o;
  o.dims = dims;
  o.dt = 1.0;
  o.rng_seed = 42;
  ir::BuildOptions bo;
  bo.dims = dims;
  auto sk = fd::discretize(pde, o).kernels[0];
  return {src, dst, ir::build_kernel(sk, bo)};
}

void fill_pattern(Array& a) {
  const auto& n = a.size();
  const int g = a.ghost_layers();
  for (int c = 0; c < a.components(); ++c) {
    for (std::int64_t z = -((n[2] > 1) ? g : 0);
         z < n[2] + ((n[2] > 1) ? g : 0); ++z) {
      for (std::int64_t y = -g; y < n[1] + g; ++y) {
        for (std::int64_t x = -g; x < n[0] + g; ++x) {
          a.at(x, y, z, c) = std::sin(0.3 * double(x)) *
                                 std::cos(0.2 * double(y)) +
                             0.1 * double(z) + 0.05 * c;
        }
      }
    }
  }
}

TEST(CEmitterTest, GeneratesCompilableStructure) {
  auto setup = make_diffusion_kernel(3);
  const std::string src = emit_c(setup.kernel);
  EXPECT_NE(src.find("extern \"C\" void"), std::string::npos);
  EXPECT_NE(src.find("for (long long z"), std::string::npos);
  EXPECT_NE(src.find("__restrict"), std::string::npos);
  EXPECT_NE(src.find("pfc_philox_uniform"), std::string::npos);  // preamble
}

TEST(CEmitterTest, EntryNameSanitized) {
  auto setup = make_diffusion_kernel(3);
  EXPECT_EQ(entry_name(setup.kernel).find('-'), std::string::npos);
}

TEST(JitTest, CompileAndRunDiffusion3D) {
  auto setup = make_diffusion_kernel(3);
  JitLibrary lib = JitLibrary::compile(emit_c(setup.kernel));
  KernelFn fn = lib.get(entry_name(setup.kernel));

  const std::array<long long, 3> n{12, 10, 8};
  Array a_src(setup.src, {n[0], n[1], n[2]}, 1);
  Array a_dst(setup.dst, {n[0], n[1], n[2]}, 1);
  fill_pattern(a_src);

  Binding b;
  b.arrays = {nullptr, nullptr};
  // bind in kernel.fields order
  for (std::size_t i = 0; i < setup.kernel.fields.size(); ++i) {
    b.arrays[i] = setup.kernel.fields[i]->id() == setup.src->id() ? &a_src
                                                                  : &a_dst;
  }
  run_compiled(setup.kernel, fn, b, n, 0.0, 0);

  // verify against a hand-written reference update
  double max_err = 0;
  for (long long z = 0; z < n[2]; ++z) {
    for (long long y = 0; y < n[1]; ++y) {
      for (long long x = 0; x < n[0]; ++x) {
        const double lap = a_src.at(x + 1, y, z) + a_src.at(x - 1, y, z) +
                           a_src.at(x, y + 1, z) + a_src.at(x, y - 1, z) +
                           a_src.at(x, y, z + 1) + a_src.at(x, y, z - 1) -
                           6.0 * a_src.at(x, y, z);
        const double expect = a_src.at(x, y, z) + 0.1 * lap;
        max_err = std::max(max_err, std::abs(a_dst.at(x, y, z) - expect));
      }
    }
  }
  EXPECT_LT(max_err, 1e-13);
}

TEST(JitTest, CompilerErrorSurfaced) {
  EXPECT_THROW(JitLibrary::compile("this is not C++"), Error);
}

TEST(JitTest, MissingSymbolThrows) {
  JitLibrary lib = JitLibrary::compile("extern \"C\" void some_fn() {}\n");
  EXPECT_THROW(lib.get("not_there"), Error);
  EXPECT_NO_THROW(lib.get("some_fn"));
}

class JitVsInterpreter : public ::testing::TestWithParam<int> {};

TEST_P(JitVsInterpreter, AgreeOnDiffusionWithNoise) {
  const int dims = GetParam() % 2 == 0 ? 2 : 3;
  const bool noise = GetParam() >= 2;
  auto setup = make_diffusion_kernel(dims, noise);

  const std::array<long long, 3> n{10, 9, dims == 3 ? 6 : 1};
  Array src_a(setup.src, {n[0], n[1], n[2]}, 1);
  Array dst_jit(setup.dst, {n[0], n[1], n[2]}, 1);
  Array dst_interp(setup.dst, {n[0], n[1], n[2]}, 1);
  fill_pattern(src_a);

  const auto bind = [&](Array& dst) {
    Binding b;
    b.arrays.resize(setup.kernel.fields.size());
    for (std::size_t i = 0; i < setup.kernel.fields.size(); ++i) {
      b.arrays[i] =
          setup.kernel.fields[i]->id() == setup.src->id() ? &src_a : &dst;
    }
    b.block_offset = {100, 200, 300};  // exercise global-coordinate path
    return b;
  };

  JitLibrary lib = JitLibrary::compile(emit_c(setup.kernel));
  run_compiled(setup.kernel, lib.get(entry_name(setup.kernel)),
               bind(dst_jit), n, 0.5, 3);

  InterpreterKernel interp(setup.kernel);
  interp.run(bind(dst_interp), n, 0.5, 3);

  EXPECT_LT(Array::max_abs_diff(dst_jit, dst_interp), 1e-12);
  // with noise the result must change between time steps (Philox keyed on t)
  if (noise) {
    Array dst2(setup.dst, {n[0], n[1], n[2]}, 1);
    interp.run(bind(dst2), n, 0.5, 4);
    EXPECT_GT(Array::max_abs_diff(dst_interp, dst2), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, JitVsInterpreter, ::testing::Range(0, 4));

TEST(JitTest, ThreadedMatchesSerial) {
  auto setup = make_diffusion_kernel(3);
  const std::array<long long, 3> n{16, 16, 16};
  Array src_a(setup.src, {n[0], n[1], n[2]}, 1);
  Array dst_serial(setup.dst, {n[0], n[1], n[2]}, 1);
  Array dst_par(setup.dst, {n[0], n[1], n[2]}, 1);
  fill_pattern(src_a);

  JitLibrary lib = JitLibrary::compile(emit_c(setup.kernel));
  KernelFn fn = lib.get(entry_name(setup.kernel));
  const auto bind = [&](Array& dst) {
    Binding b;
    b.arrays.resize(setup.kernel.fields.size());
    for (std::size_t i = 0; i < setup.kernel.fields.size(); ++i) {
      b.arrays[i] =
          setup.kernel.fields[i]->id() == setup.src->id() ? &src_a : &dst;
    }
    return b;
  };
  run_compiled(setup.kernel, fn, bind(dst_serial), n, 0, 0, nullptr);
  ThreadPool pool(4);
  run_compiled(setup.kernel, fn, bind(dst_par), n, 0, 0, &pool);
  EXPECT_DOUBLE_EQ(Array::max_abs_diff(dst_serial, dst_par), 0.0);
}

TEST(BindingTest, ValidationErrors) {
  auto setup = make_diffusion_kernel(3);
  const std::array<long long, 3> n{8, 8, 8};
  Array src_a(setup.src, {8, 8, 8}, 1);
  Array no_ghost(setup.dst, {8, 8, 8}, 0);

  Binding b;
  b.arrays = {&src_a};  // too few
  EXPECT_THROW(marshal(setup.kernel, b, n), Error);

  // wrong field bound
  b.arrays = {&no_ghost, &no_ghost};
  EXPECT_THROW(marshal(setup.kernel, b, n), Error);
}

TEST(GeneratedRngTest, JitPhiloxMatchesHost) {
  // kernel that writes pure noise; compare against host philox_uniform
  auto dst = Field::create("noise_dst", 3, 1);
  auto src = Field::create("noise_src", 3, 1);
  fd::PdeUpdate pde;
  pde.name = "noise";
  pde.src = src;
  pde.dst = dst;
  pde.rhs = {sym::random_uniform(5)};
  fd::DiscretizeOptions o;
  o.dims = 3;
  o.rng_seed = 1234;
  auto k = ir::build_kernel(fd::discretize(pde, o).kernels[0]);

  const std::array<long long, 3> n{6, 5, 4};
  Array a_src(src, {n[0], n[1], n[2]}, 1);
  Array a_dst(dst, {n[0], n[1], n[2]}, 1);
  Binding b;
  b.arrays.resize(k.fields.size());
  for (std::size_t i = 0; i < k.fields.size(); ++i) {
    b.arrays[i] = k.fields[i]->id() == src->id() ? &a_src : &a_dst;
  }
  JitLibrary lib = JitLibrary::compile(emit_c(k));
  run_compiled(k, lib.get(entry_name(k)), b, n, 0.0, 17);

  for (long long z = 0; z < n[2]; ++z) {
    for (long long y = 0; y < n[1]; ++y) {
      for (long long x = 0; x < n[0]; ++x) {
        const double expect = rng::philox_uniform(
            std::uint64_t(x), std::uint64_t(y), std::uint64_t(z), 17, 1234,
            5);
        EXPECT_DOUBLE_EQ(a_dst.at(x, y, z), expect);
      }
    }
  }
}

TEST(CudaEmitterTest, StructureLinear3D) {
  auto setup = make_diffusion_kernel(3);
  const std::string cu = emit_cuda(setup.kernel);
  EXPECT_NE(cu.find("__global__"), std::string::npos);
  EXPECT_NE(cu.find("blockIdx.x"), std::string::npos);
  EXPECT_NE(cu.find("threadIdx.x"), std::string::npos);
  EXPECT_NE(cu.find("if (cx >= n[0]"), std::string::npos);
  EXPECT_EQ(cu.find("for (long long z"), std::string::npos)
      << "linear3d mapping must not contain a z loop";
}

TEST(CudaEmitterTest, SliceMappingLoopsOverZ) {
  auto setup = make_diffusion_kernel(3);
  CudaEmitOptions o;
  o.mapping = ThreadMapping::SliceXY;
  const std::string cu = emit_cuda(setup.kernel, o);
  EXPECT_NE(cu.find("for (long long cz"), std::string::npos);
}

TEST(CudaEmitterTest, FastMathIntrinsics) {
  // build a kernel with a division and an rsqrt
  auto src = Field::create("fm_src", 3, 1);
  auto dst = Field::create("fm_dst", 3, 1);
  fd::PdeUpdate pde;
  pde.name = "fm";
  pde.src = src;
  pde.dst = dst;
  pde.rhs = {sym::rsqrt(sym::at(src) + 2.0) / (sym::at(src) + 3.0)};
  fd::DiscretizeOptions o3;
  o3.dims = 3;
  auto k = ir::build_kernel(fd::discretize(pde, o3).kernels[0]);
  CudaEmitOptions fast;
  fast.fast_math = true;
  const std::string cu = emit_cuda(k, fast);
  EXPECT_NE(cu.find("__frsqrt_rn"), std::string::npos);
  EXPECT_NE(cu.find("fdividef"), std::string::npos);
  const std::string exact = emit_cuda(k);
  EXPECT_EQ(exact.find("__frsqrt_rn"), std::string::npos);
  EXPECT_EQ(exact.find("fdividef"), std::string::npos);
}

TEST(CudaEmitterTest, FencesEmitted) {
  auto setup = make_diffusion_kernel(3);
  ir::insert_thread_fences(setup.kernel, 1);
  const std::string cu = emit_cuda(setup.kernel);
  EXPECT_NE(cu.find("__threadfence();"), std::string::npos);
}

TEST(CudaEmitterTest, LaunchConfig) {
  auto setup = make_diffusion_kernel(3);
  CudaEmitOptions o;
  o.block_dim = {64, 4, 2};
  const std::string cfg = launch_config(setup.kernel, o, {400, 400, 400});
  EXPECT_NE(cfg.find("dim3 block(64, 4, 2)"), std::string::npos);
  EXPECT_NE(cfg.find("grid(7, 100, 200)"), std::string::npos);
}

TEST(FastMathCpuTest, ApproximationErrorBounded) {
  // the C backend's fast variants must agree with exact math to ~1e-6
  auto src = Field::create("ap_src", 2, 1);
  auto dst = Field::create("ap_dst", 2, 1);
  fd::PdeUpdate pde;
  pde.name = "ap";
  pde.src = src;
  pde.dst = dst;
  pde.rhs = {sym::rsqrt(sym::at(src) + 2.0) + sym::sqrt_(sym::at(src) + 3.0)};
  fd::DiscretizeOptions o2;
  o2.dims = 2;
  ir::BuildOptions bo;
  bo.dims = 2;
  auto k = ir::build_kernel(fd::discretize(pde, o2).kernels[0], bo);

  const std::array<long long, 3> n{16, 8, 1};
  Array a_src(src, {n[0], n[1], 1}, 1);
  Array d_exact(dst, {n[0], n[1], 1}, 1);
  Array d_fast(dst, {n[0], n[1], 1}, 1);
  fill_pattern(a_src);
  const auto bind = [&](Array& d) {
    Binding b;
    b.arrays.resize(k.fields.size());
    for (std::size_t i = 0; i < k.fields.size(); ++i) {
      b.arrays[i] = k.fields[i]->id() == src->id() ? &a_src : &d;
    }
    return b;
  };
  CEmitOptions fast;
  fast.fast_math = true;
  JitLibrary exact_lib = JitLibrary::compile(emit_c(k));
  JitLibrary fast_lib = JitLibrary::compile(emit_c(k, fast));
  run_compiled(k, exact_lib.get(entry_name(k)), bind(d_exact), n, 0, 0);
  run_compiled(k, fast_lib.get(entry_name(k)), bind(d_fast), n, 0, 0);
  const double err = Array::max_abs_diff(d_exact, d_fast);
  EXPECT_GT(err, 0.0) << "fast path should differ in the last bits";
  EXPECT_LT(err, 1e-5);
}

}  // namespace
}  // namespace pfc::backend
