// Content-addressed kernel cache (backend::KernelCache): key stability,
// hit/miss/eviction accounting, corrupted-entry fallback, concurrent-compile
// dedup — plus the PFC_JIT_TMPDIR isolation contract two compiles in one
// process rely on.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "pfc/backend/jit.hpp"
#include "pfc/backend/kernel_cache.hpp"
#include "pfc/support/assert.hpp"

namespace pfc::backend {
namespace {

namespace fs = std::filesystem;

/// Fresh directory under /tmp, removed on destruction.
struct TempDir {
  TempDir() {
    std::string tmpl = (fs::temp_directory_path() / "pfc_kc_XXXXXX").string();
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    const char* made = ::mkdtemp(buf.data());
    PFC_REQUIRE(made != nullptr, "mkdtemp failed in test");
    path = made;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

std::string tiny_source(const std::string& tag) {
  return "extern \"C\" void pfc_cache_probe_" + tag + "() {}\n";
}

bool is_lower_hex(const std::string& s) {
  for (char c : s) {
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  }
  return true;
}

TEST(KernelCache, KeyIsStableAndContentAddressed) {
  JitLibrary::Options opts;
  const std::string a = KernelCache::key_of(tiny_source("a"), opts);
  EXPECT_EQ(a, KernelCache::key_of(tiny_source("a"), opts));
  EXPECT_EQ(a.size(), 64u);
  EXPECT_TRUE(is_lower_hex(a));

  // Anything that changes the binary changes the key...
  EXPECT_NE(a, KernelCache::key_of(tiny_source("b"), opts));
  JitLibrary::Options flags = opts;
  flags.extra_flags = "-DPFC_TEST";
  EXPECT_NE(a, KernelCache::key_of(tiny_source("a"), flags));
  JitLibrary::Options o2 = opts;
  o2.optimization = "-O2";
  EXPECT_NE(a, KernelCache::key_of(tiny_source("a"), o2));

  // ...and keep_sources, which only changes scratch handling, does not.
  JitLibrary::Options keep = opts;
  keep.keep_sources = true;
  EXPECT_EQ(a, KernelCache::key_of(tiny_source("a"), keep));
}

TEST(KernelCache, MissThenMemoryHit) {
  TempDir dir;
  KernelCacheConfig cfg;
  cfg.directory = dir.path;
  KernelCache& cache = KernelCache::shared();
  cache.reset();

  const KernelCacheResult first =
      cache.acquire(tiny_source("mh"), {}, cfg);
  ASSERT_NE(first.library, nullptr);
  EXPECT_FALSE(first.hit);
  EXPECT_GT(first.compile_seconds, 0.0);
  EXPECT_TRUE(fs::exists(dir.path + "/" + first.key + ".so"));

  const KernelCacheResult again =
      cache.acquire(tiny_source("mh"), {}, cfg);
  ASSERT_NE(again.library, nullptr);
  EXPECT_TRUE(again.hit);
  EXPECT_EQ(again.key, first.key);
  EXPECT_EQ(again.compile_seconds, 0.0);

  const KernelCacheStats st = cache.stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.entries, 1u);
  EXPECT_GT(st.bytes, 0u);
  cache.reset();
}

TEST(KernelCache, DiskHitSurvivesReset) {
  TempDir dir;
  KernelCacheConfig cfg;
  cfg.directory = dir.path;
  KernelCache& cache = KernelCache::shared();
  cache.reset();
  cache.acquire(tiny_source("disk"), {}, cfg);

  // reset() drops the in-memory index but leaves the files: the next
  // acquire rediscovers the entry as a disk hit (cross-process reuse).
  cache.reset();
  const KernelCacheResult r = cache.acquire(tiny_source("disk"), {}, cfg);
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(r.compile_seconds, 0.0);
  const KernelCacheStats st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 0u);
  cache.reset();
}

TEST(KernelCache, LruEvictsOldestWhenOverBudget) {
  TempDir dir;
  KernelCacheConfig cfg;
  cfg.directory = dir.path;
  cfg.max_bytes = 1;  // every .so is larger: only the newest entry survives
  KernelCache& cache = KernelCache::shared();
  cache.reset();

  const KernelCacheResult a = cache.acquire(tiny_source("ev_a"), {}, cfg);
  const KernelCacheResult b = cache.acquire(tiny_source("ev_b"), {}, cfg);
  KernelCacheStats st = cache.stats();
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_EQ(st.entries, 1u);
  EXPECT_FALSE(fs::exists(dir.path + "/" + a.key + ".so"));
  EXPECT_TRUE(fs::exists(dir.path + "/" + b.key + ".so"));
  // A library handed out before its entry was evicted stays valid.
  EXPECT_NE(a.library, nullptr);

  // The evicted entry is gone for real: asking again recompiles.
  const KernelCacheResult a2 = cache.acquire(tiny_source("ev_a"), {}, cfg);
  EXPECT_FALSE(a2.hit);
  st = cache.stats();
  EXPECT_EQ(st.misses, 3u);
  EXPECT_EQ(st.evictions, 2u);
  cache.reset();
}

TEST(KernelCache, CorruptedEntryFallsBackToRecompile) {
  TempDir dir;
  KernelCacheConfig cfg;
  cfg.directory = dir.path;
  KernelCache& cache = KernelCache::shared();
  cache.reset();
  KernelCacheResult first = cache.acquire(tiny_source("corrupt"), {}, cfg);
  // Unload the library before corrupting the file: dlopen dedups by inode,
  // so a still-mapped object would mask the corruption.
  cache.reset();
  first.library.reset();

  {
    std::ofstream f(dir.path + "/" + first.key + ".so",
                    std::ios::binary | std::ios::trunc);
    f << "not an ELF shared object";
  }

  // Corruption costs a recompile, never an error or a wrong library.
  const KernelCacheResult r = cache.acquire(tiny_source("corrupt"), {}, cfg);
  ASSERT_NE(r.library, nullptr);
  EXPECT_FALSE(r.hit);
  EXPECT_EQ(cache.stats().misses, 1u);

  // The recompile republished a loadable object.
  cache.reset();
  EXPECT_TRUE(cache.acquire(tiny_source("corrupt"), {}, cfg).hit);
  cache.reset();
}

TEST(KernelCache, ConcurrentAcquiresCompileOnce) {
  TempDir dir;
  KernelCacheConfig cfg;
  cfg.directory = dir.path;
  KernelCache& cache = KernelCache::shared();
  cache.reset();

  KernelCacheResult r1, r2;
  std::thread t1([&] { r1 = cache.acquire(tiny_source("cc"), {}, cfg); });
  std::thread t2([&] { r2 = cache.acquire(tiny_source("cc"), {}, cfg); });
  t1.join();
  t2.join();

  ASSERT_NE(r1.library, nullptr);
  ASSERT_NE(r2.library, nullptr);
  EXPECT_EQ(r1.key, r2.key);
  const KernelCacheStats st = cache.stats();
  EXPECT_EQ(st.misses, 1u) << "in-flight dedup must compile exactly once";
  EXPECT_EQ(st.hits, 1u);
  cache.reset();
}

// PFC_JIT_TMPDIR isolation: two compiles in one process (here: truly
// concurrent, as the serve daemon's workers run them) each get their own
// pfc_jit_p<pid>_c<counter> scratch directory under the shared tmpdir and
// never collide.
TEST(JitTmpDir, ConcurrentCompilesGetUniqueScratchDirs) {
  TempDir dir;
  ASSERT_EQ(::setenv("PFC_JIT_TMPDIR", dir.path.c_str(), 1), 0);

  std::string dir_a, dir_b;
  std::thread ta([&] {
    JitLibrary lib = JitLibrary::compile(tiny_source("tmp_a"));
    dir_a = lib.directory();
    EXPECT_NO_THROW(lib.get("pfc_cache_probe_tmp_a"));
  });
  std::thread tb([&] {
    JitLibrary lib = JitLibrary::compile(tiny_source("tmp_b"));
    dir_b = lib.directory();
    EXPECT_NO_THROW(lib.get("pfc_cache_probe_tmp_b"));
  });
  ta.join();
  tb.join();
  ::unsetenv("PFC_JIT_TMPDIR");

  EXPECT_NE(dir_a, dir_b);
  const std::string prefix =
      dir.path + "/pfc_jit_p" + std::to_string(::getpid()) + "_c";
  EXPECT_EQ(dir_a.compare(0, prefix.size(), prefix), 0) << dir_a;
  EXPECT_EQ(dir_b.compare(0, prefix.size(), prefix), 0) << dir_b;
}

}  // namespace
}  // namespace pfc::backend
