// Philox 4x32-10 known-answer and statistical tests.
#include <gtest/gtest.h>

#include <cmath>

#include "pfc/rng/philox.hpp"

namespace pfc::rng {
namespace {

TEST(PhiloxTest, KnownAnswerZeroInput) {
  // Random123 kat_vectors: philox4x32 10 rounds, ctr/key all zero
  const auto r = philox4x32({0, 0, 0, 0}, {0, 0});
  EXPECT_EQ(r[0], 0x6627e8d5u);
  EXPECT_EQ(r[1], 0xe169c58du);
  EXPECT_EQ(r[2], 0xbc57ac4cu);
  EXPECT_EQ(r[3], 0x9b00dbd8u);
}

TEST(PhiloxTest, KnownAnswerAllOnes) {
  const auto r = philox4x32({0xffffffffu, 0xffffffffu, 0xffffffffu,
                             0xffffffffu},
                            {0xffffffffu, 0xffffffffu});
  EXPECT_EQ(r[0], 0x408f276du);
  EXPECT_EQ(r[1], 0x41c83b0eu);
  EXPECT_EQ(r[2], 0xa20bc7c6u);
  EXPECT_EQ(r[3], 0x6d5451fdu);
}

TEST(PhiloxTest, Deterministic) {
  const double a = philox_uniform(1, 2, 3, 4, 42, 0);
  const double b = philox_uniform(1, 2, 3, 4, 42, 0);
  EXPECT_EQ(a, b);
}

TEST(PhiloxTest, DistinctInputsDecorrelated) {
  EXPECT_NE(philox_uniform(1, 2, 3, 4, 42, 0),
            philox_uniform(2, 2, 3, 4, 42, 0));
  EXPECT_NE(philox_uniform(1, 2, 3, 4, 42, 0),
            philox_uniform(1, 2, 3, 5, 42, 0));
  EXPECT_NE(philox_uniform(1, 2, 3, 4, 42, 0),
            philox_uniform(1, 2, 3, 4, 43, 0));
  EXPECT_NE(philox_uniform(1, 2, 3, 4, 42, 0),
            philox_uniform(1, 2, 3, 4, 42, 1));
}

TEST(PhiloxTest, RangeAndMoments) {
  double sum = 0, sum2 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = philox_uniform(std::uint64_t(i % 100),
                                    std::uint64_t(i / 100), 7, 13, 99, 0);
    ASSERT_GE(u, -1.0);
    ASSERT_LT(u, 1.0);
    sum += u;
    sum2 += u * u;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);        // E[U(-1,1)] = 0
  EXPECT_NEAR(var, 1.0 / 3.0, 0.01);   // Var = 1/3
}

TEST(PhiloxTest, StreamIndependenceMoments) {
  // correlation between two streams should be ~0
  double sxy = 0, sx = 0, sy = 0, sxx = 0, syy = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = philox_uniform(std::uint64_t(i), 0, 0, 0, 1234, 0);
    const double y = philox_uniform(std::uint64_t(i), 0, 0, 0, 1234, 1);
    sx += x; sy += y; sxx += x * x; syy += y * y; sxy += x * y;
  }
  const double corr =
      (sxy / n - sx / n * sy / n) /
      std::sqrt((sxx / n - sx / n * sx / n) * (syy / n - sy / n * sy / n));
  EXPECT_NEAR(corr, 0.0, 0.03);
}

}  // namespace
}  // namespace pfc::rng
