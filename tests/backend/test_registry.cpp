// Backend registry tests (DESIGN.md §13): the built-in tiers register at
// static-init time in degradation-chain order, probe() gates chain
// membership, registration is latest-wins — and the round-trip property:
// every registered backend compiles and runs the grandchem φ kernel
// bitwise-identically to the pre-registry enum path (direct JitLibrary /
// InterpreterKernel construction).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "pfc/app/compiler.hpp"
#include "pfc/app/params.hpp"
#include "pfc/backend/c_emitter.hpp"
#include "pfc/backend/interp.hpp"
#include "pfc/backend/jit.hpp"
#include "pfc/backend/kernel_runner.hpp"
#include "pfc/backend/registry.hpp"
#include "pfc/fd/discretize.hpp"
#include "pfc/field/array.hpp"
#include "pfc/ir/kernel.hpp"
#include "pfc/ir/vectorize.hpp"
#include "pfc/support/assert.hpp"

namespace pfc::backend {
namespace {

TEST(Registry, BuiltinTiersRegisteredInPriorityOrder) {
  BackendRegistry& reg = BackendRegistry::instance();
  ASSERT_NE(reg.find("jit-vector"), nullptr);
  ASSERT_NE(reg.find("jit-scalar"), nullptr);
  ASSERT_NE(reg.find("interpreter"), nullptr);
  EXPECT_EQ(reg.find("no-such-backend"), nullptr);
  EXPECT_GE(reg.all().size(), 3u);

  // A vector request walks vector -> scalar -> interpreter, each at the
  // width its probe resolved.
  const std::vector<ChainEntry> chain = reg.chain(8);
  ASSERT_GE(chain.size(), 3u);
  EXPECT_STREQ(chain[0].backend->name(), "jit-vector");
  EXPECT_EQ(chain[0].width, 8);
  EXPECT_STREQ(chain[1].backend->name(), "jit-scalar");
  EXPECT_EQ(chain[1].width, 1);
  EXPECT_STREQ(chain.back().backend->name(), "interpreter");
  EXPECT_EQ(chain.back().width, 1);

  // A scalar request skips the vector tier entirely.
  const std::vector<ChainEntry> scalar = reg.chain(1);
  ASSERT_GE(scalar.size(), 2u);
  for (const ChainEntry& e : scalar) {
    EXPECT_STRNE(e.backend->name(), "jit-vector");
  }
  EXPECT_STREQ(scalar[0].backend->name(), "jit-scalar");
}

TEST(Registry, CapabilitiesDescribeWhatTheAutotunerMayAsk) {
  BackendRegistry& reg = BackendRegistry::instance();
  const BackendCapabilities v = reg.find("jit-vector")->capabilities();
  EXPECT_TRUE(v.jit);
  EXPECT_EQ(v.max_vector_width, 8);
  EXPECT_TRUE(v.streaming_stores);
  const BackendCapabilities s = reg.find("jit-scalar")->capabilities();
  EXPECT_TRUE(s.jit);
  EXPECT_EQ(s.max_vector_width, 1);
  const BackendCapabilities i = reg.find("interpreter")->capabilities();
  EXPECT_FALSE(i.jit);
  EXPECT_EQ(i.max_vector_width, 1);
  EXPECT_FALSE(i.streaming_stores);
}

/// A tier that exists but never serves a request (probe 0) — registration
/// must be visible to find()/all() without ever entering a chain.
struct NullBackend final : Backend {
  const char* name() const override { return "test-null"; }
  const char* tier() const override { return "test"; }
  BackendCapabilities capabilities() const override { return {}; }
  int probe(int) const override { return 0; }
  void compile(const std::vector<const ir::Kernel*>&, const TierOptions&,
               TierArtifact&) const override {}
};

TEST(Registry, RegistrationIsLatestWinsAndProbeGatesChains) {
  BackendRegistry& reg = BackendRegistry::instance();
  reg.add(std::make_unique<NullBackend>(), 999);
  ASSERT_NE(reg.find("test-null"), nullptr);
  for (const ChainEntry& e : reg.chain(8)) {
    EXPECT_STRNE(e.backend->name(), "test-null");
  }
  // Re-registering the same name replaces the entry instead of duplicating.
  reg.add(std::make_unique<NullBackend>(), 998);
  int count = 0;
  for (const Backend* b : reg.all()) {
    if (std::string(b->name()) == "test-null") ++count;
  }
  EXPECT_EQ(count, 1);
}

/// The grandchem φ update lowered as one full (unsplit) kernel — the same
/// front half the enum path and the registry path both consume.
ir::Kernel lower_phi_kernel() {
  static app::GrandChemParams params = app::make_p1(2);
  static app::GrandChemModel model(params);
  fd::DiscretizeOptions d;
  d.dims = 2;
  d.dx = params.dx;
  d.dt = params.dt;
  d.split_staggered = false;
  d.clamp_unit_interval = true;
  d.renormalize_simplex = true;
  std::optional<FieldPtr> flux;
  std::vector<ir::Kernel> ks =
      app::ModelCompiler::lower(model.phi_update(), d, app::CompileOptions{},
                                &flux);
  PFC_REQUIRE(ks.size() == 1, "full lowering must yield one kernel");
  return ks[0];
}

/// Per-field arrays with a deterministic in-range fill (φ-like values well
/// inside [0,1] so clamping/renormalization stay smooth), plus the binding
/// over them. Both paths get an identically-initialized private set.
Binding make_binding(const ir::Kernel& k,
                     std::vector<std::unique_ptr<Array>>& store,
                     const std::array<long long, 3>& n) {
  const std::array<int, 3> r = k.access_radius();
  const int g = std::max({r[0], r[1], r[2], 1});
  Binding b;
  for (const FieldPtr& f : k.fields) {
    auto a = std::make_unique<Array>(
        f, std::array<std::int64_t, 3>{n[0], n[1], n[2]}, g);
    for (int c = 0; c < a->components(); ++c) {
      for (long long y = -g; y < n[1] + g; ++y) {
        for (long long x = -g; x < n[0] + g; ++x) {
          a->at(x, y, 0, c) =
              0.15 + 0.05 * double(c) +
              0.01 * double(((x + 3) * 7 + (y + 3) * 3) % 13);
        }
      }
    }
    b.arrays.push_back(a.get());
    store.push_back(std::move(a));
  }
  b.params.assign(k.scalar_params.size(), 0.3);
  return b;
}

/// Round-trip: every registered backend that serves a width-4 request must
/// produce bitwise-identical φ-kernel results to the direct (enum-path)
/// construction of the same tier — JitLibrary::compile(emit_c(...)) for the
/// JIT tiers, InterpreterKernel for the interpreter.
TEST(RegistryRoundTrip, EveryBackendMatchesEnumPathBitwise) {
  const ir::Kernel k = lower_phi_kernel();
  const std::array<long long, 3> n{18, 11, 1};
  BackendRegistry& reg = BackendRegistry::instance();

  int exercised = 0;
  for (const Backend* b : reg.all()) {
    const int width = b->probe(4);
    if (width == 0) continue;  // tier does not serve this request
    SCOPED_TRACE(std::string("backend ") + b->name());

    // Registry path: compile through the plugin interface.
    TierOptions to;
    to.vector_width = width;
    TierArtifact art;
    b->compile({&k}, to, art);

    std::vector<std::unique_ptr<Array>> reg_store;
    Binding reg_bind = make_binding(k, reg_store, n);
    if (!art.fns.empty()) {
      ASSERT_EQ(art.fns.size(), 1u);
      run_compiled(k, art.fns[0], reg_bind, n, 0.0, 0, nullptr, nullptr,
                   art.widths[0]);
    } else {
      ASSERT_EQ(art.interps.size(), 1u);
      art.interps[0]->run(reg_bind, n, 0.0, 0);
    }

    // Enum path: the pre-registry direct construction of the same tier.
    std::vector<std::unique_ptr<Array>> ref_store;
    Binding ref_bind = make_binding(k, ref_store, n);
    if (std::string(b->name()) == "interpreter") {
      InterpreterKernel interp(k);
      interp.run(ref_bind, n, 0.0, 0);
    } else {
      CEmitOptions eo;
      eo.vector_width = width;
      const ir::VectorPlan plan = ir::plan_vectorize(k, {width, false});
      const int run_w = plan.enabled() ? plan.width : 1;
      JitLibrary lib = JitLibrary::compile(emit_c(k, eo));
      run_compiled(k, lib.get(entry_name(k)), ref_bind, n, 0.0, 0, nullptr,
                   nullptr, run_w);
    }

    ASSERT_EQ(ref_store.size(), reg_store.size());
    for (std::size_t i = 0; i < ref_store.size(); ++i) {
      EXPECT_EQ(Array::max_abs_diff(*ref_store[i], *reg_store[i]), 0.0)
          << "field " << k.fields[i]->name();
    }
    ++exercised;
  }
  // jit-vector (width 4), jit-scalar and the interpreter must all have run.
  EXPECT_GE(exercised, 3);
}

}  // namespace
}  // namespace pfc::backend
