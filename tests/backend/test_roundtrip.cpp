// End-to-end round-trip property: random symbolic expressions evaluated
// three independent ways — the sym-level evaluator, the bytecode
// interpreter, and JIT-compiled generated C — must agree. This pins the
// whole printer/emitter/ABI stack against the algebra layer.
#include <gtest/gtest.h>

#include <cmath>

#include "pfc/backend/c_emitter.hpp"
#include "pfc/backend/interp.hpp"
#include "pfc/backend/jit.hpp"
#include "pfc/backend/kernel_runner.hpp"
#include "pfc/fd/stencil.hpp"
#include "pfc/ir/kernel.hpp"
#include "pfc/sym/simplify.hpp"

namespace pfc::backend {
namespace {

using sym::Expr;
using sym::num;

/// Random smooth expression over field values and coordinates.
Expr random_expr(const FieldPtr& f, unsigned seed) {
  unsigned state = seed * 2654435761u + 13;
  const auto rnd = [&]() {
    state = state * 1664525u + 1013904223u;
    return (state >> 16) % 997;
  };
  const auto leaf = [&]() -> Expr {
    switch (rnd() % 4) {
      case 0: return sym::at(f);
      case 1: return sym::shifted(sym::at(f), int(rnd() % 2), 1);
      case 2: return num(double(rnd() % 9) / 4.0 - 1.0);
      default: return sym::coord(int(rnd() % 2)) * 0.1;
    }
  };
  Expr e = leaf();
  for (int i = 0; i < 6; ++i) {
    switch (rnd() % 7) {
      case 0: e = e + leaf(); break;
      case 1: e = e * leaf(); break;
      case 2: e = e - leaf(); break;
      case 3: e = sym::sqrt_(sym::pow(e, 2) + 1.0); break;
      case 4: e = e / (sym::pow(leaf(), 2) + 2.0); break;
      case 5: e = sym::max_(e, leaf()); break;
      case 6: e = sym::tanh_(e * 0.3); break;
    }
  }
  return e;
}

class RoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(RoundTrip, SymInterpreterJitAgree) {
  const unsigned seed = unsigned(GetParam());
  auto f = Field::create("rt_src" + std::to_string(seed), 2, 1);
  auto g = Field::create("rt_dst" + std::to_string(seed), 2, 1);
  const Expr e = random_expr(f, seed);

  fd::StencilKernel sk;
  sk.name = "rt" + std::to_string(seed);
  sk.assignments.push_back({sym::at(g), e});
  fd::recompute_field_lists(sk);
  ir::BuildOptions bo;
  bo.dims = 2;
  const ir::Kernel k = ir::build_kernel(sk, bo);

  const std::array<long long, 3> n{6, 5, 1};
  Array src(f, {n[0], n[1], 1}, 1);
  Array dst_jit(g, {n[0], n[1], 1}, 1);
  Array dst_int(g, {n[0], n[1], 1}, 1);
  for (long long y = -1; y <= n[1]; ++y) {
    for (long long x = -1; x <= n[0]; ++x) {
      src.at(x, y, 0) = 0.3 + 0.1 * double(x) - 0.07 * double(y);
    }
  }

  const auto bind = [&](Array& d) {
    Binding b;
    b.arrays.resize(k.fields.size());
    for (std::size_t i = 0; i < k.fields.size(); ++i) {
      b.arrays[i] = k.fields[i]->id() == f->id() ? &src : &d;
    }
    return b;
  };
  JitLibrary lib = JitLibrary::compile(emit_c(k));
  run_compiled(k, lib.get(entry_name(k)), bind(dst_jit), n, 0.0, 0);
  InterpreterKernel interp(k);
  interp.run(bind(dst_int), n, 0.0, 0);

  // reference: direct symbolic evaluation per cell
  for (long long y = 0; y < n[1]; ++y) {
    for (long long x = 0; x < n[0]; ++x) {
      sym::EvalContext ctx;
      ctx.symbols = {{"x0", double(x)}, {"x1", double(y)}, {"x2", 0.0},
                     {"t", 0.0}};
      ctx.field_value = [&](const Expr& fr) {
        return src.at(x + fr->offset()[0], y + fr->offset()[1], 0);
      };
      const double ref = sym::evaluate(e, ctx);
      EXPECT_NEAR(dst_jit.at(x, y, 0), ref, 1e-11 * (1.0 + std::abs(ref)))
          << "seed " << seed << " cell " << x << "," << y;
      EXPECT_NEAR(dst_int.at(x, y, 0), ref, 1e-11 * (1.0 + std::abs(ref)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTrip, ::testing::Range(0, 12));

}  // namespace
}  // namespace pfc::backend
