// Sub-range kernel execution tests: a sweep decomposed into an interior
// box plus disjoint frontier slabs must reproduce the monolithic sweep
// bit-for-bit, at every vector width and with coordinate-keyed noise.
//
// This is the contract the distributed overlap path relies on: frontier
// slabs run first, the interior runs while the ghost exchange is in
// flight, and the union must equal one full sweep exactly. The vector
// peel re-anchors per row from the actual `lo[0]` pointer, so sub-range
// x bounds never shift lane assignment relative to the full sweep.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "pfc/app/compiler.hpp"
#include "pfc/app/params.hpp"
#include "pfc/backend/c_emitter.hpp"
#include "pfc/backend/jit.hpp"
#include "pfc/backend/kernel_runner.hpp"
#include "pfc/fd/discretize.hpp"
#include "pfc/ir/kernel.hpp"

namespace pfc::backend {
namespace {

using sym::Expr;
using sym::num;

struct Setup {
  FieldPtr src, dst;
  ir::Kernel kernel;
};

/// Stencil + parameter + coordinates + lane-serial exp, optional philox
/// noise keyed on global coordinates (counters must not shift under
/// sub-range execution).
Setup make_kernel(int dims, bool with_noise) {
  static int counter = 0;
  const std::string suffix = "sr" + std::to_string(counter++);
  auto src = Field::create("sr_src" + suffix, dims, 1);
  auto dst = Field::create("sr_dst" + suffix, dims, 1);
  fd::PdeUpdate pde;
  pde.name = "subrange" + suffix;
  pde.src = src;
  pde.dst = dst;
  Expr u = sym::at(src);
  Expr lap = num(0);
  for (int d = 0; d < dims; ++d) {
    lap = lap + sym::diff_op(sym::diff_op(u, d), d);
  }
  Expr rhs = 0.1 * lap + sym::symbol("kappa") * u +
             0.001 * sym::exp_(-(u * u)) + 1e-4 * sym::coord(0);
  if (with_noise) rhs = rhs + 0.01 * sym::random_uniform(0);
  pde.rhs = {rhs};
  fd::DiscretizeOptions o;
  o.dims = dims;
  o.dt = 1.0;
  o.rng_seed = 11;
  ir::BuildOptions bo;
  bo.dims = dims;
  auto sk = fd::discretize(pde, o).kernels[0];
  return {src, dst, ir::build_kernel(sk, bo)};
}

void fill_pattern(Array& a) {
  const auto& n = a.size();
  const int g = a.ghost_layers();
  for (int c = 0; c < a.components(); ++c) {
    for (std::int64_t z = -((n[2] > 1) ? g : 0);
         z < n[2] + ((n[2] > 1) ? g : 0); ++z) {
      for (std::int64_t y = -g; y < n[1] + g; ++y) {
        for (std::int64_t x = -g; x < n[0] + g; ++x) {
          a.at(x, y, z, c) =
              std::sin(0.3 * double(x)) * std::cos(0.2 * double(y)) +
              0.1 * double(z) + 0.05 * c;
        }
      }
    }
  }
}

JitLibrary::Options exact_jit() {
  JitLibrary::Options jo;
  jo.extra_flags = "-ffp-contract=off";
  return jo;
}

/// Onion decomposition of `full` into an inset interior plus <= 2*dims
/// disjoint frontier slabs of width `w`, peeled outermost-dim-first (the
/// same shape the distributed driver builds).
CellRange peel(const CellRange& full, long long w, int dims,
               std::vector<CellRange>& slabs) {
  CellRange inner = full;
  for (int d = dims - 1; d >= 0; --d) {
    const auto dd = std::size_t(d);
    if (inner.hi[dd] - inner.lo[dd] <= 0) continue;
    CellRange lo_slab = inner;
    lo_slab.hi[dd] = std::min(inner.hi[dd], inner.lo[dd] + w);
    if (lo_slab.cells() > 0) slabs.push_back(lo_slab);
    CellRange hi_slab = inner;
    hi_slab.lo[dd] = std::max(lo_slab.hi[dd], inner.hi[dd] - w);
    if (hi_slab.cells() > 0) slabs.push_back(hi_slab);
    inner.lo[dd] = lo_slab.hi[dd];
    inner.hi[dd] = hi_slab.lo[dd];
  }
  return inner;
}

struct Compiled {
  JitLibrary lib;
  KernelFn fn;
};

Compiled compile_at(const Setup& s, int width) {
  CEmitOptions eo;
  eo.vector_width = width;
  JitLibrary lib = JitLibrary::compile(emit_c(s.kernel, eo), exact_jit());
  KernelFn fn = lib.get(entry_name(s.kernel));
  return {std::move(lib), fn};
}

Binding make_binding(const Setup& s, Array& src_a, Array& dst_a) {
  Binding b;
  b.arrays.resize(s.kernel.fields.size());
  for (std::size_t i = 0; i < s.kernel.fields.size(); ++i) {
    b.arrays[i] = s.kernel.fields[i]->id() == s.src->id() ? &src_a : &dst_a;
  }
  b.params.assign(s.kernel.scalar_params.size(), 0.25);
  b.block_offset = {40, 50, 60};  // noise counters use global coordinates
  return b;
}

/// Runs the kernel over interior + frontier slabs (frontier first, like
/// the overlap step) and over the full box; both must match bitwise.
void expect_decomposed_matches(const Setup& s, int width, int dims,
                               const std::array<long long, 3>& n,
                               long long shell_w) {
  Array src_a(s.src, {n[0], n[1], n[2]}, 1);
  fill_pattern(src_a);
  const Compiled c = compile_at(s, width);

  Array mono(s.dst, {n[0], n[1], n[2]}, 1);
  run_compiled(s.kernel, c.fn, make_binding(s, src_a, mono), n, 0.5, 3,
               nullptr, nullptr, width);

  const CellRange full = full_range(s.kernel, n);
  std::vector<CellRange> slabs;
  const CellRange interior = peel(full, shell_w, dims, slabs);
  long long covered = interior.cells();
  Array split(s.dst, {n[0], n[1], n[2]}, 1);
  const Binding b = make_binding(s, src_a, split);
  for (const CellRange& sl : slabs) {
    covered += sl.cells();
    run_compiled(s.kernel, c.fn, b, n, 0.5, 3, nullptr, nullptr, width, &sl);
  }
  run_compiled(s.kernel, c.fn, b, n, 0.5, 3, nullptr, nullptr, width,
               &interior);

  EXPECT_EQ(covered, full.cells()) << "decomposition must tile the box";
  EXPECT_EQ(Array::max_abs_diff(mono, split), 0.0)
      << "width " << width << " shell " << shell_w;
}

TEST(SubRangeTest, FullRangeCoversExtents) {
  auto s = make_kernel(2, false);
  const CellRange r = full_range(s.kernel, {13, 7, 1});
  EXPECT_EQ(r.lo, (std::array<long long, 3>{0, 0, 0}));
  EXPECT_EQ(r.hi[0], 13 + s.kernel.extent_plus[0]);
  EXPECT_EQ(r.hi[1], 7 + s.kernel.extent_plus[1]);
  EXPECT_EQ(r.hi[2], 1);
  EXPECT_GT(r.cells(), 0);
}

TEST(SubRangeTest, EmptyRangeIsANoOp) {
  auto s = make_kernel(2, false);
  const std::array<long long, 3> n{9, 5, 1};
  Array src_a(s.src, {n[0], n[1], n[2]}, 1);
  fill_pattern(src_a);
  const Compiled c = compile_at(s, 1);
  Array dst(s.dst, {n[0], n[1], n[2]}, 1);
  Array untouched(s.dst, {n[0], n[1], n[2]}, 1);
  const CellRange empty{{3, 3, 0}, {3, 5, 1}};  // hi[0] == lo[0]
  EXPECT_EQ(empty.cells(), 0);
  run_compiled(s.kernel, c.fn, make_binding(s, src_a, dst), n, 0.5, 3,
               nullptr, nullptr, 1, &empty);
  EXPECT_EQ(Array::max_abs_diff(dst, untouched), 0.0);
}

TEST(SubRangeTest, ReadOffsetRangesSeeTheStencil) {
  auto s = make_kernel(3, false);
  const auto ranges = read_offset_ranges(s.kernel);
  ASSERT_TRUE(ranges.count(s.src->id()));
  const OffsetRange& r = ranges.at(s.src->id());
  for (int d = 0; d < 3; ++d) {
    EXPECT_EQ(r.lo[std::size_t(d)], -1) << "dim " << d;
    EXPECT_EQ(r.hi[std::size_t(d)], 1) << "dim " << d;
  }
  EXPECT_EQ(ranges.count(s.dst->id()), 0u) << "dst is write-only";
}

class SubRangeEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(SubRangeEquivalence, InteriorPlusFrontierMatchesMonolithic) {
  const int width = GetParam();
  // odd extents: peel + main + remainder all non-empty at every width,
  // and the shell slabs start at unaligned x offsets
  auto s3 = make_kernel(3, false);
  expect_decomposed_matches(s3, width, 3, {13, 7, 5}, 1);
  expect_decomposed_matches(s3, width, 3, {13, 7, 5}, 2);
  auto s2 = make_kernel(2, false);
  expect_decomposed_matches(s2, width, 2, {17, 9, 1}, 2);
}

TEST_P(SubRangeEquivalence, DegenerateBoxIsAllFrontier) {
  // 2W >= extent in y: the interior collapses to empty and the whole box
  // lands in the frontier slabs — still an exact tiling
  const int width = GetParam();
  auto s = make_kernel(2, false);
  expect_decomposed_matches(s, width, 2, {11, 4, 1}, 2);
}

TEST_P(SubRangeEquivalence, NoiseCountersDoNotShift) {
  // philox is keyed on global coordinates; a sub-range sweep must draw the
  // identical stream for every cell it covers
  const int width = GetParam();
  auto s = make_kernel(2, true);
  expect_decomposed_matches(s, width, 2, {13, 9, 1}, 2);
  auto s3 = make_kernel(3, true);
  expect_decomposed_matches(s3, width, 3, {7, 5, 3}, 1);
}

INSTANTIATE_TEST_SUITE_P(Widths, SubRangeEquivalence,
                         ::testing::Values(1, 4, 8));

TEST(SubRangeTest, ThreadedInteriorMatchesSerial) {
  auto s = make_kernel(3, false);
  const std::array<long long, 3> n{21, 9, 7};
  Array src_a(s.src, {n[0], n[1], n[2]}, 1);
  fill_pattern(src_a);
  const Compiled c = compile_at(s, 8);
  const CellRange full = full_range(s.kernel, n);
  std::vector<CellRange> slabs;
  const CellRange interior = peel(full, 1, 3, slabs);

  Array serial(s.dst, {n[0], n[1], n[2]}, 1);
  run_compiled(s.kernel, c.fn, make_binding(s, src_a, serial), n, 0, 0,
               nullptr, nullptr, 8, &interior);
  Array par(s.dst, {n[0], n[1], n[2]}, 1);
  ThreadPool pool(4);
  run_compiled(s.kernel, c.fn, make_binding(s, src_a, par), n, 0, 0, &pool,
               nullptr, 8, &interior);
  EXPECT_EQ(Array::max_abs_diff(serial, par), 0.0);
}

/// The split-staggered pipeline through the compiled-model layer: flux
/// precompute kernel feeding the main update, both executed sub-ranged
/// (with the flux kernel's wider box) vs. monolithic, two Heun-like
/// passes with a src/dst swap in between.
TEST(SubRangeTest, SplitStaggeredPipelineMatches) {
  app::GrandChemParams params = app::make_p1(2);
  app::GrandChemModel model(params);
  app::CompileOptions co;
  co.split_phi = true;
  co.split_mu = true;
  co.vector_width = 8;
  co.jit_extra_flags = "-ffp-contract=off";
  const app::CompiledModel cm = app::ModelCompiler(co).compile(model);
  ASSERT_GE(cm.phi_kernels.size(), 2u) << "split must stage a flux kernel";
  ASSERT_TRUE(cm.phi_flux_field.has_value());

  const std::array<long long, 3> n{19, 9, 1};
  const auto make_arrays = [&] {
    struct Fields {
      Array phi_src, phi_dst, flux;
    };
    Array ps(model.phi_src(), {n[0], n[1], n[2]}, 1);
    Array pd(model.phi_dst(), {n[0], n[1], n[2]}, 1);
    Array fl(*cm.phi_flux_field, {n[0] + 1, n[1] + 1, n[2]}, 0);
    fill_pattern(ps);
    return Fields{std::move(ps), std::move(pd), std::move(fl)};
  };
  // mu is read by the phi kernels; give it a fixed pattern
  Array mu(model.mu_src(), {n[0], n[1], n[2]}, 1);
  fill_pattern(mu);

  const auto bind = [&](const ir::Kernel& k, Array& ps, Array& pd,
                        Array& fl) {
    Binding b;
    b.arrays.resize(k.fields.size());
    for (std::size_t i = 0; i < k.fields.size(); ++i) {
      const auto id = k.fields[i]->id();
      if (id == model.phi_src()->id()) {
        b.arrays[i] = &ps;
      } else if (id == model.phi_dst()->id()) {
        b.arrays[i] = &pd;
      } else if (id == (*cm.phi_flux_field)->id()) {
        b.arrays[i] = &fl;
      } else {
        b.arrays[i] = &mu;
      }
    }
    return b;
  };

  const auto run_pass = [&](bool decomposed, Array& ps, Array& pd,
                            Array& fl) {
    for (const app::CompiledKernel& k : cm.phi_kernels) {
      const Binding b = bind(k.ir, ps, pd, fl);
      if (!decomposed) {
        k.run(b, n, 0.0, 0);
        continue;
      }
      const CellRange full = full_range(k.ir, n);
      std::vector<CellRange> slabs;
      // the flux kernel needs a wider shell (main reads flux at x, x+1)
      const CellRange interior = peel(full, 2, 2, slabs);
      for (const CellRange& sl : slabs) k.run(b, n, 0.0, 0, nullptr, nullptr, &sl);
      k.run(b, n, 0.0, 0, nullptr, nullptr, &interior);
    }
  };

  // stage the update back into src (fields are identity-checked by
  // marshal, so the arrays cannot simply be swapped)
  const auto feed_back = [&](Array& src, const Array& dst) {
    for (int c = 0; c < src.components(); ++c) {
      for (long long y = 0; y < n[1]; ++y) {
        for (long long x = 0; x < n[0]; ++x) {
          src.at(x, y, 0, c) = dst.at(x, y, 0, c);
        }
      }
    }
  };
  auto a = make_arrays();
  auto b2 = make_arrays();
  for (int pass = 0; pass < 2; ++pass) {  // Heun-style double application
    run_pass(false, a.phi_src, a.phi_dst, a.flux);
    run_pass(true, b2.phi_src, b2.phi_dst, b2.flux);
    feed_back(a.phi_src, a.phi_dst);
    feed_back(b2.phi_src, b2.phi_dst);
  }
  EXPECT_EQ(Array::max_abs_diff(a.phi_src, b2.phi_src), 0.0);
  EXPECT_EQ(Array::max_abs_diff(a.flux, b2.flux), 0.0);
}

}  // namespace
}  // namespace pfc::backend
