// Explicit-SIMD vectorization tests: the VectorPlan analysis and bitwise
// scalar-vs-vector equivalence of the generated C across widths, odd
// extents (peel + remainder loops), streaming stores, lane-serial calls
// (philox, exp) and the full split-staggered model pipeline.
//
// Bitwise equality holds because both variants are compiled with
// -ffp-contract=off (no FMA re-association) and every vector op is either
// an IEEE-exact packed instruction (+ - * / sqrt) or a lane loop calling
// the identical scalar routine (exp, philox, ...).
#include <gtest/gtest.h>

#include <cmath>

#include "pfc/app/compiler.hpp"
#include "pfc/app/params.hpp"
#include "pfc/app/simulation.hpp"
#include "pfc/backend/c_emitter.hpp"
#include "pfc/backend/jit.hpp"
#include "pfc/backend/kernel_runner.hpp"
#include "pfc/fd/discretize.hpp"
#include "pfc/ir/kernel.hpp"
#include "pfc/ir/vectorize.hpp"

namespace pfc::backend {
namespace {

using sym::Expr;
using sym::num;

struct Setup {
  FieldPtr src, dst;
  ir::Kernel kernel;
};

/// A kernel that exercises every vector code path: stencil loads, a free
/// scalar parameter (invariant broadcast), a z-dependent hoisted temp
/// (per-z broadcast), the x coordinate (iota vector), an IEEE sqrt, a
/// lane-serial exp and optional philox noise.
Setup make_rich_kernel(int dims, bool with_noise) {
  static int counter = 0;
  const std::string suffix = "v" + std::to_string(counter++);
  auto src = Field::create("r_src" + suffix, dims, 1);
  auto dst = Field::create("r_dst" + suffix, dims, 1);
  fd::PdeUpdate pde;
  pde.name = "rich" + suffix;
  pde.src = src;
  pde.dst = dst;
  Expr u = sym::at(src);
  Expr lap = num(0);
  for (int d = 0; d < dims; ++d) {
    lap = lap + sym::diff_op(sym::diff_op(u, d), d);
  }
  Expr rhs = 0.1 * lap + sym::symbol("kappa") * u +
             0.01 * sym::sqrt_(u * u + 1.0) +
             0.001 * sym::exp_(-(u * u)) + 1e-4 * sym::coord(0);
  if (dims == 3) rhs = rhs + 1e-3 * sym::coord(2) * sym::coord(2);
  if (with_noise) rhs = rhs + 0.01 * sym::random_uniform(0);
  pde.rhs = {rhs};
  fd::DiscretizeOptions o;
  o.dims = dims;
  o.dt = 1.0;
  o.rng_seed = 7;
  ir::BuildOptions bo;
  bo.dims = dims;
  auto sk = fd::discretize(pde, o).kernels[0];
  return {src, dst, ir::build_kernel(sk, bo)};
}

void fill_pattern(Array& a) {
  const auto& n = a.size();
  const int g = a.ghost_layers();
  for (int c = 0; c < a.components(); ++c) {
    for (std::int64_t z = -((n[2] > 1) ? g : 0);
         z < n[2] + ((n[2] > 1) ? g : 0); ++z) {
      for (std::int64_t y = -g; y < n[1] + g; ++y) {
        for (std::int64_t x = -g; x < n[0] + g; ++x) {
          a.at(x, y, z, c) =
              std::sin(0.3 * double(x)) * std::cos(0.2 * double(y)) +
              0.1 * double(z) + 0.05 * c;
        }
      }
    }
  }
}

/// JIT options pinning the FP contract so scalar and vector code execute
/// identical IEEE operation sequences.
JitLibrary::Options exact_jit() {
  JitLibrary::Options jo;
  jo.extra_flags = "-ffp-contract=off";
  return jo;
}

/// Runs `kernel` emitted at `width` and returns the destination array.
Array run_at_width(const Setup& s, int width, bool streaming,
                   const std::array<long long, 3>& n, Array& src_a) {
  CEmitOptions eo;
  eo.vector_width = width;
  eo.streaming_stores = streaming;
  JitLibrary lib = JitLibrary::compile(emit_c(s.kernel, eo), exact_jit());
  KernelFn fn = lib.get(entry_name(s.kernel));

  Array dst(s.dst, {n[0], n[1], n[2]}, 1);
  Binding b;
  b.arrays.resize(s.kernel.fields.size());
  for (std::size_t i = 0; i < s.kernel.fields.size(); ++i) {
    b.arrays[i] = s.kernel.fields[i]->id() == s.src->id() ? &src_a : &dst;
  }
  b.params.assign(s.kernel.scalar_params.size(), 0.25);  // kappa
  b.block_offset = {40, 50, 60};  // exercise global coordinates
  run_compiled(s.kernel, fn, b, n, 0.5, 3, nullptr, nullptr, width);
  return dst;
}

TEST(VectorPlanTest, ScalarWidthDisablesPlan) {
  auto s = make_rich_kernel(3, false);
  const auto plan = ir::plan_vectorize(s.kernel, {1, false});
  EXPECT_FALSE(plan.enabled());
  EXPECT_GT(plan.flops_per_cell_scalar, 0);
}

TEST(VectorPlanTest, PlanClassifiesKernel) {
  auto s = make_rich_kernel(3, false);
  const auto plan = ir::plan_vectorize(s.kernel, {8, true});
  EXPECT_TRUE(plan.enabled());
  EXPECT_EQ(plan.width, 8);
  EXPECT_TRUE(plan.body_uses_coord[0]);  // iota path
  ASSERT_NE(plan.primary_write, std::size_t(-1));
  EXPECT_EQ(s.kernel.fields[plan.primary_write]->id(), s.dst->id());
  // dst is write-only -> streamed when streaming stores are requested
  EXPECT_TRUE(plan.is_streamed(plan.primary_write));
  // kappa is a free parameter -> hoisted broadcast
  EXPECT_FALSE(plan.broadcasts.empty());
  // exp is lane-serial and keeps its full cost; everything else amortizes
  EXPECT_GE(plan.lane_serial_calls, 1);
  EXPECT_LT(plan.flops_per_cell_vector, double(plan.flops_per_cell_scalar));
  EXPECT_GT(plan.flops_per_cell_vector,
            double(plan.flops_per_cell_scalar) / 8.0);
}

TEST(VectorPlanTest, RejectsUnsupportedWidth) {
  auto s = make_rich_kernel(2, false);
  EXPECT_THROW(ir::plan_vectorize(s.kernel, {3, false}), Error);
  EXPECT_THROW(ir::plan_vectorize(s.kernel, {16, false}), Error);
}

TEST(VectorEmitTest, SourceContainsVectorConstructs) {
  auto s = make_rich_kernel(3, false);
  CEmitOptions eo;
  eo.vector_width = 8;
  eo.streaming_stores = true;
  const std::string src = emit_c(s.kernel, eo);
  EXPECT_NE(src.find("vectorized: width 8"), std::string::npos);
  EXPECT_NE(src.find("#define PFC_VW 8"), std::string::npos);
  EXPECT_NE(src.find("_xpeel"), std::string::npos);  // alignment peel
  EXPECT_NE(src.find("pfc_vd_set1"), std::string::npos);
  EXPECT_NE(src.find("pfc_vd_stream("), std::string::npos);
  EXPECT_NE(src.find("pfc_vd_stream_fence"), std::string::npos);
  // scalar emission stays free of vector runtime
  const std::string scalar = emit_c(s.kernel);
  EXPECT_EQ(scalar.find("pfc_vd"), std::string::npos);
}

class VectorEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(VectorEquivalence, BitwiseMatchesScalar) {
  const int width = GetParam();
  // odd x extent: peel + main + remainder all non-empty at every width
  const std::array<long long, 3> n{13, 7, 5};
  auto s = make_rich_kernel(3, false);
  Array src_a(s.src, {n[0], n[1], n[2]}, 1);
  fill_pattern(src_a);
  Array ref = run_at_width(s, 1, false, n, src_a);
  Array vec = run_at_width(s, width, false, n, src_a);
  EXPECT_EQ(Array::max_abs_diff(ref, vec), 0.0) << "width " << width;
}

INSTANTIATE_TEST_SUITE_P(Widths, VectorEquivalence,
                         ::testing::Values(2, 4, 8));

TEST(VectorEquivalenceTest, TinyAndAlignedExtents) {
  // x extents around/below the vector width: degenerate main loops,
  // peel-clamped rows, exact multiples
  auto s = make_rich_kernel(2, false);
  for (const long long nx : {1LL, 3LL, 8LL, 16LL, 17LL}) {
    const std::array<long long, 3> n{nx, 4, 1};
    Array src_a(s.src, {n[0], n[1], n[2]}, 1);
    fill_pattern(src_a);
    Array ref = run_at_width(s, 1, false, n, src_a);
    Array vec = run_at_width(s, 8, false, n, src_a);
    EXPECT_EQ(Array::max_abs_diff(ref, vec), 0.0) << "nx " << nx;
  }
}

TEST(VectorEquivalenceTest, StreamingStoresMatch) {
  const std::array<long long, 3> n{19, 6, 4};
  auto s = make_rich_kernel(3, false);
  Array src_a(s.src, {n[0], n[1], n[2]}, 1);
  fill_pattern(src_a);
  Array ref = run_at_width(s, 1, false, n, src_a);
  Array vec = run_at_width(s, 8, true, n, src_a);
  EXPECT_EQ(Array::max_abs_diff(ref, vec), 0.0);
}

TEST(VectorEquivalenceTest, LaneSerialNoiseMatches) {
  // philox runs one scalar call per lane, keyed on global coordinates; the
  // vector loop must reproduce the scalar stream bit-for-bit
  const std::array<long long, 3> n{11, 5, 1};
  auto s = make_rich_kernel(2, true);
  Array src_a(s.src, {n[0], n[1], n[2]}, 1);
  fill_pattern(src_a);
  Array ref = run_at_width(s, 1, false, n, src_a);
  Array vec = run_at_width(s, 8, false, n, src_a);
  EXPECT_EQ(Array::max_abs_diff(ref, vec), 0.0);
}

TEST(VectorEquivalenceTest, ThreadedVectorMatchesSerialVector) {
  const std::array<long long, 3> n{21, 8, 6};
  auto s = make_rich_kernel(3, false);
  Array src_a(s.src, {n[0], n[1], n[2]}, 1);
  fill_pattern(src_a);

  CEmitOptions eo;
  eo.vector_width = 8;
  JitLibrary lib = JitLibrary::compile(emit_c(s.kernel, eo), exact_jit());
  KernelFn fn = lib.get(entry_name(s.kernel));
  const auto bind = [&](Array& dst) {
    Binding b;
    b.arrays.resize(s.kernel.fields.size());
    for (std::size_t i = 0; i < s.kernel.fields.size(); ++i) {
      b.arrays[i] = s.kernel.fields[i]->id() == s.src->id() ? &src_a : &dst;
    }
    b.params.assign(s.kernel.scalar_params.size(), 0.25);
    return b;
  };
  Array serial(s.dst, {n[0], n[1], n[2]}, 1);
  Array par(s.dst, {n[0], n[1], n[2]}, 1);
  run_compiled(s.kernel, fn, bind(serial), n, 0, 0, nullptr, nullptr, 8);
  ThreadPool pool(4);
  run_compiled(s.kernel, fn, bind(par), n, 0, 0, &pool, nullptr, 8);
  EXPECT_EQ(Array::max_abs_diff(serial, par), 0.0);
}

/// Full pipeline: the split-staggered grandchem model, scalar vs. width 8,
/// through the Simulation driver (flux kernels, clamping, Heun staging).
TEST(VectorEquivalenceTest, SplitStaggeredModelMatches) {
  const auto run_sim = [](int width) {
    app::GrandChemParams params = app::make_p1(2);
    app::GrandChemModel model(params);
    app::SimulationOptions opts;
    opts.cells = {22, 9, 1};
    opts.compile.split_phi = true;
    opts.compile.split_mu = true;
    opts.compile.vector_width = width;
    opts.compile.jit_extra_flags = "-ffp-contract=off";
    opts.time_scheme = app::TimeScheme::Heun;
    app::Simulation sim(model, opts);
    sim.init_phi([](long long x, long long, long long, int c) {
      const double v = app::interface_profile(double(x) - 10.0, 6.0);
      return c == 0 ? v : (c == 1 ? 1.0 - v : 0.0);
    });
    sim.init_mu([](long long, long long, long long, int) { return -0.1; });
    sim.run(2);
    return std::pair<double, double>(sim.phi().interior_sum(0),
                                     sim.mu().interior_sum(0));
  };
  const auto [phi1, mu1] = run_sim(1);
  const auto [phi8, mu8] = run_sim(8);
  EXPECT_EQ(phi1, phi8);
  EXPECT_EQ(mu1, mu8);
}

}  // namespace
}  // namespace pfc::backend
