// Variational derivative and energy-functional builder tests.
#include <gtest/gtest.h>

#include <cmath>

#ifndef M_PI
#define M_PI 3.14159265358979323846
#endif

#include "pfc/continuum/functional.hpp"
#include "pfc/continuum/varder.hpp"
#include "pfc/sym/diff.hpp"
#include "pfc/sym/printer.hpp"
#include "pfc/sym/simplify.hpp"
#include "pfc/sym/subs.hpp"

namespace pfc::continuum {
namespace {

using sym::equals;
using sym::num;

TEST(VarDerTest, PotentialOnlyTerm) {
  // I = phi^2 -> delta I / delta phi = 2 phi
  auto phi = Field::create("phi", 3, 1);
  Expr I = sym::pow(sym::at(phi), 2);
  Expr d = variational_derivative(I, phi, 0, 3);
  EXPECT_TRUE(equals(d, 2.0 * sym::at(phi))) << sym::to_string(d);
}

TEST(VarDerTest, DirichletEnergyGivesLaplacian) {
  // I = 1/2 |grad phi|^2 -> -lap(phi) (as -sum_d D_d(D_d phi))
  auto phi = Field::create("phi", 3, 1);
  Expr I = 0.5 * norm_sq(grad(phi, 0, 3));
  Expr d = variational_derivative(I, phi, 0, 3);
  Expr expected = num(0);
  for (int dd = 0; dd < 3; ++dd) {
    expected = expected -
               sym::diff_op(sym::diff_op(sym::at(phi), dd), dd);
  }
  EXPECT_TRUE(equals(d, expected)) << sym::to_string(d);
}

TEST(VarDerTest, MixedTerm) {
  // I = phi * D0(phi): dI/dphi = D0(phi); flux part = -D0(phi)
  auto phi = Field::create("phi", 3, 1);
  Expr g = sym::diff_op(sym::at(phi), 0);
  Expr I = sym::at(phi) * g;
  Expr d = variational_derivative(I, phi, 0, 3);
  Expr expected = g - sym::diff_op(sym::at(phi), 0);  // = 0 (total deriv)
  EXPECT_TRUE(equals(d, expected)) << sym::to_string(d);
}

TEST(VarDerTest, CrossComponentCoupling) {
  auto phi = Field::create("phi", 3, 2);
  // I = phi0^2 phi1
  Expr I = sym::pow(sym::at(phi, 0), 2) * sym::at(phi, 1);
  EXPECT_TRUE(equals(variational_derivative(I, phi, 0, 3),
                     2.0 * sym::at(phi, 0) * sym::at(phi, 1)));
  EXPECT_TRUE(equals(variational_derivative(I, phi, 1, 3),
                     sym::pow(sym::at(phi, 0), 2)));
}

TEST(PairTableTest, SymmetricAccess) {
  PairTable t(4, num(0));
  t.set(1, 3, num(5));
  EXPECT_TRUE(equals(t(3, 1), num(5)));
  EXPECT_TRUE(equals(t(1, 3), num(5)));
  EXPECT_THROW(t(2, 2), Error);
}

TEST(FunctionalTest, ObstaclePotentialStructure) {
  auto phi = Field::create("phi", 3, 3);
  PairTable gamma(3, num(1.0));
  Expr w = obstacle_potential(phi, gamma, num(10.0));
  // at phi = (0.5, 0.5, 0): w = 16/pi^2 * (0.25 + 0 + 0) + 0
  sym::EvalContext ctx;
  ctx.field_value = [](const sym::Expr& fr) {
    return fr->component() == 2 ? 0.0 : 0.5;
  };
  EXPECT_NEAR(sym::evaluate(w, ctx), 16.0 / (M_PI * M_PI) * 0.25, 1e-12);
  // triple term active when all three present
  ctx.field_value = [](const sym::Expr&) { return 1.0 / 3.0; };
  const double expected = 16.0 / (M_PI * M_PI) * 3.0 / 9.0 + 10.0 / 27.0;
  EXPECT_NEAR(sym::evaluate(w, ctx), expected, 1e-12);
}

TEST(FunctionalTest, InterpolationProperties) {
  // h(0)=0, h(1)=1, h'(0)=h'(1)=0, h(x)+h(1-x)=1
  Expr x = sym::symbol("x");
  Expr h = interpolation_h(x);
  sym::EvalContext ctx;
  for (double v : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    ctx.symbols = {{"x", v}};
    const double hv = sym::evaluate(h, ctx);
    ctx.symbols = {{"x", 1.0 - v}};
    EXPECT_NEAR(hv + sym::evaluate(h, ctx), 1.0, 1e-12);
  }
  Expr hp = interpolation_h_prime(x);
  ctx.symbols = {{"x", 0.0}};
  EXPECT_DOUBLE_EQ(sym::evaluate(hp, ctx), 0.0);
  ctx.symbols = {{"x", 1.0}};
  EXPECT_DOUBLE_EQ(sym::evaluate(hp, ctx), 0.0);
  // h' matches diff(h)
  Expr dh = sym::diff(h, x);
  ctx.symbols = {{"x", 0.3}};
  EXPECT_NEAR(sym::evaluate(dh, ctx), sym::evaluate(hp, ctx), 1e-12);
}

TEST(FunctionalTest, GradientEnergyIsotropicValue) {
  // two phases, gamma = 2, phi0 = a, phi1 = b with known gradients
  auto phi = Field::create("phi", 2, 2);
  PairTable gamma(2, num(2.0));
  Expr a = gradient_energy_isotropic(phi, 2, gamma);
  // q = phi0 grad(phi1) - phi1 grad(phi0); bind values
  sym::EvalContext ctx;
  ctx.field_value = [](const sym::Expr& fr) {
    return fr->component() == 0 ? 0.6 : 0.4;
  };
  // evaluate needs Diff values: substitute them first
  sym::SubsMap map = {
      {sym::diff_op(sym::at(phi, 0), 0), num(1.0)},
      {sym::diff_op(sym::at(phi, 0), 1), num(-2.0)},
      {sym::diff_op(sym::at(phi, 1), 0), num(0.5)},
      {sym::diff_op(sym::at(phi, 1), 1), num(3.0)},
  };
  Expr bound = sym::substitute(a, map);
  // q = 0.6*(0.5,3) - 0.4*(1,-2) = (-0.1, 2.6); |q|^2 = 6.77; a = 2*6.77
  EXPECT_NEAR(sym::evaluate(bound, ctx), 2.0 * 6.77, 1e-12);
}

TEST(FunctionalTest, CubicAnisotropyReducesToIsotropicAtZeroDelta) {
  auto phi = Field::create("phi", 3, 2);
  PairTable gamma(2, num(1.5));
  std::vector<Anisotropy> an(1);
  an[0].type = Anisotropy::Type::Cubic;
  an[0].delta = num(0.0);
  Expr a_aniso = gradient_energy(phi, 3, gamma, an);
  Expr a_iso = gradient_energy_isotropic(phi, 3, gamma);
  // delta = 0 makes the anisotropy factor exactly 1
  sym::SubsMap map;
  for (int c = 0; c < 2; ++c) {
    for (int dd = 0; dd < 3; ++dd) {
      map.emplace_back(sym::diff_op(sym::at(phi, c), dd),
                       num(0.3 * (c + 1) + 0.2 * dd));
    }
  }
  sym::EvalContext ctx;
  ctx.field_value = [](const sym::Expr& fr) {
    return fr->component() == 0 ? 0.7 : 0.3;
  };
  EXPECT_NEAR(sym::evaluate(sym::substitute(a_aniso, map), ctx),
              sym::evaluate(sym::substitute(a_iso, map), ctx), 1e-12);
}

TEST(ParabolicFitTest, ConcentrationIsGradientOfPsi) {
  ParabolicFit fit;
  fit.a0 = {{num(2.0), num(0.5)}, {num(0.5), num(1.0)}};
  fit.a1 = {{num(0.1), num(0.0)}, {num(0.0), num(0.2)}};
  fit.b0 = {num(-1.0), num(0.5)};
  fit.b1 = {num(0.05), num(0.0)};
  fit.c0 = num(3.0);
  fit.c1 = num(-0.1);

  Expr mu0 = sym::symbol("mu0"), mu1 = sym::symbol("mu1");
  Expr T = sym::symbol("T");
  Vec mu = {mu0, mu1};
  Expr psi = fit.psi(mu, T);
  Vec c = fit.concentration(mu, T);
  EXPECT_TRUE(equals(sym::expand(sym::diff(psi, mu0)), sym::expand(c[0])));
  EXPECT_TRUE(equals(sym::expand(sym::diff(psi, mu1)), sym::expand(c[1])));
  // dc/dT matches
  Vec dct = fit.dc_dT(mu);
  EXPECT_TRUE(equals(sym::expand(sym::diff(c[0], T)), sym::expand(dct[0])));
}

TEST(MatrixTest, InverseTimesMatrixIsIdentity) {
  for (int n = 1; n <= 3; ++n) {
    Matrix m;
    m.assign(std::size_t(n), std::vector<Expr>(std::size_t(n)));
    double v = 1.0;
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        m[std::size_t(i)][std::size_t(j)] =
            num((i == j ? 5.0 : 0.0) + v);
        v += 0.7;
      }
    }
    Matrix inv = inverse(m);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        Expr s = num(0);
        for (int kk = 0; kk < n; ++kk) {
          s = s + m[std::size_t(i)][std::size_t(kk)] *
                      inv[std::size_t(kk)][std::size_t(j)];
        }
        sym::EvalContext ctx;
        EXPECT_NEAR(sym::evaluate(s, ctx), i == j ? 1.0 : 0.0, 1e-12)
            << "n=" << n << " (" << i << "," << j << ")";
      }
    }
  }
}

}  // namespace
}  // namespace pfc::continuum
