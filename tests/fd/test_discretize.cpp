// Discretization tests: stencil shapes, staggered evaluation (Eq. 11),
// split-kernel generation, and 2nd-order consistency on polynomial fields.
#include <gtest/gtest.h>

#include <cmath>

#include "pfc/fd/discretize.hpp"
#include "pfc/sym/printer.hpp"
#include "pfc/sym/simplify.hpp"

namespace pfc::fd {
namespace {

using sym::Expr;
using sym::equals;
using sym::num;

DiscretizeOptions opts2d() {
  DiscretizeOptions o;
  o.dims = 2;
  o.dx = 1.0;
  return o;
}

/// Evaluates a stencil expression with field values provided by fn(x,y,z,c)
/// at offsets relative to the origin cell.
double eval_stencil(const Expr& e,
                    const std::function<double(int, int, int, int)>& fn,
                    double x0 = 0, double y0 = 0, double z0 = 0) {
  sym::EvalContext ctx;
  ctx.symbols = {{"x0", x0}, {"x1", y0}, {"x2", z0}, {"t", 0.0},
                 {"t_step", 0.0}};
  ctx.field_value = [&](const Expr& fr) {
    return fn(fr->offset()[0], fr->offset()[1], fr->offset()[2],
              fr->component());
  };
  return sym::evaluate(e, ctx);
}

TEST(DiscretizeTest, LaplacianStencil) {
  auto phi = Field::create("phi", 2, 1);
  // div(grad(phi)) discretizes to the classic 5-point stencil in 2D
  Expr lap = num(0);
  for (int d = 0; d < 2; ++d) {
    lap = lap + sym::diff_op(sym::diff_op(sym::at(phi), d), d);
  }
  Expr st = discretize_expression(lap, opts2d());
  const double v = eval_stencil(st, [](int dx, int dy, int, int) {
    // f = x^2 + 3y^2 -> lap = 8 exactly (2nd order exact on quadratics)
    return double(dx * dx + 3 * dy * dy);
  });
  EXPECT_NEAR(v, 8.0, 1e-12) << sym::to_string(st);
}

TEST(DiscretizeTest, CentralDifferenceForFirstDerivative) {
  auto phi = Field::create("phi", 2, 1);
  Expr st = discretize_expression(sym::diff_op(sym::at(phi), 0), opts2d());
  // f = 5x -> df/dx = 5
  EXPECT_NEAR(eval_stencil(st, [](int dx, int, int, int) {
                return 5.0 * dx;
              }),
              5.0, 1e-12);
  // stencil must be (f(+1) - f(-1)) / 2
  EXPECT_TRUE(equals(st, 0.5 * sym::shifted(sym::at(phi), 0, 1) -
                             0.5 * sym::shifted(sym::at(phi), 0, -1)))
      << sym::to_string(st);
}

TEST(DiscretizeTest, VariableCoefficientFluxMatchesEq11) {
  // d/dx( p(x) * d f/dx ): the example of the paper's Eq. 11
  auto f = Field::create("f", 2, 1);
  Expr p = sym::coord(0) * 2.0 + 1.0;  // analytic p(x) = 2x + 1
  Expr flux = p * sym::diff_op(sym::at(f), 0);
  Expr st = discretize_expression(sym::diff_op(flux, 0), opts2d());
  // With f = x^2: d/dx((2x+1) 2x) = 8x + 2 -> at x=1: 10
  const double v =
      eval_stencil(st, [](int dx, int, int, int) {
        const double x = 1.0 + dx;
        return x * x;
      }, /*x0=*/1.0);
  EXPECT_NEAR(v, 10.0, 1e-10) << sym::to_string(st);
}

TEST(DiscretizeTest, TransverseDerivativeAtStaggeredPosition) {
  // d/dx( d f/dy ) must use the Eq. 11 four-point average and be exact for
  // bilinear fields
  auto f = Field::create("f", 2, 1);
  Expr inner = sym::diff_op(sym::at(f), 1);
  Expr st = discretize_expression(sym::diff_op(inner, 0), opts2d());
  const double v = eval_stencil(st, [](int dx, int dy, int, int) {
    return 3.0 * dx * dy;  // d2f/dxdy = 3
  });
  EXPECT_NEAR(v, 3.0, 1e-12) << sym::to_string(st);
}

TEST(DiscretizeTest, DxScaling) {
  auto phi = Field::create("phi", 2, 1);
  DiscretizeOptions o = opts2d();
  o.dx = 0.5;
  Expr lap = sym::diff_op(sym::diff_op(sym::at(phi), 0), 0);
  Expr st = discretize_expression(lap, o);
  // f = x_cells^2 in cell units = (x/dx)^2 -> d2f/dx2 = 2/dx^2 = 8
  EXPECT_NEAR(eval_stencil(st, [](int dx, int, int, int) {
                return double(dx * dx);
              }),
              8.0, 1e-12);
}

TEST(DiscretizeTest, DtOnRhsThrows) {
  auto phi = Field::create("phi", 2, 1);
  EXPECT_THROW(
      discretize_expression(sym::dt_op(sym::at(phi)), opts2d()), Error);
}

TEST(DiscretizeTest, TooDeepNestingThrows) {
  auto phi = Field::create("phi", 2, 1);
  Expr third = sym::diff_op(
      sym::diff_op(sym::pow(sym::diff_op(sym::at(phi), 0), 2), 0), 0);
  EXPECT_THROW(discretize_expression(third, opts2d()), Error);
}

TEST(DiscretizeTest, RandomLoweredToPhilox) {
  auto phi = Field::create("phi", 2, 1);
  DiscretizeOptions o = opts2d();
  o.rng_seed = 7;
  Expr st = discretize_expression(sym::random_uniform(3) + sym::at(phi), o);
  bool found = false;
  sym::for_each(st, [&](const Expr& e) {
    if (e->kind() == sym::Kind::Call &&
        e->func() == sym::Func::PhiloxUniform) {
      found = true;
      EXPECT_TRUE(e->arg(4)->is_number(7.0));  // seed
      EXPECT_TRUE(e->arg(5)->is_number(3.0));  // stream
    }
  });
  EXPECT_TRUE(found);
}

TEST(DiscretizeTest, ExplicitEulerUpdate) {
  auto src = Field::create("c_src", 2, 1);
  auto dst = Field::create("c_dst", 2, 1);
  PdeUpdate pde;
  pde.name = "c";
  pde.src = src;
  pde.dst = dst;
  Expr lap = num(0);
  for (int d = 0; d < 2; ++d) {
    lap = lap + sym::diff_op(sym::diff_op(sym::at(src), d), d);
  }
  pde.rhs = {0.25 * lap};
  DiscretizeOptions o = opts2d();
  o.dt = 0.1;
  auto r = discretize(pde, o);
  ASSERT_EQ(r.kernels.size(), 1u);
  const auto& k = r.kernels[0];
  EXPECT_EQ(k.name, "c-full");
  ASSERT_EQ(k.assignments.size(), 1u);
  EXPECT_EQ(k.assignments[0].lhs->field()->name(), "c_dst");
  // value check: uniform field stays unchanged
  const double v = eval_stencil(k.assignments[0].rhs,
                                [](int, int, int, int) { return 4.2; });
  EXPECT_NEAR(v, 4.2, 1e-12);
  auto radius = access_radius(k);
  EXPECT_EQ(radius[0], 1);
  EXPECT_EQ(radius[1], 1);
  EXPECT_EQ(radius[2], 0);
}

TEST(DiscretizeTest, SplitKernelsShareFluxField) {
  auto src = Field::create("u_src", 2, 1);
  auto dst = Field::create("u_dst", 2, 1);
  PdeUpdate pde;
  pde.name = "u";
  pde.src = src;
  pde.dst = dst;
  // nonlinear diffusion: div( u^2 grad u ) forces flux caching to be useful
  Expr flux_term = num(0);
  for (int d = 0; d < 2; ++d) {
    flux_term = flux_term +
                sym::diff_op(sym::pow(sym::at(src), 2) *
                                 sym::diff_op(sym::at(src), d),
                             d);
  }
  pde.rhs = {flux_term};
  DiscretizeOptions o = opts2d();
  o.split_staggered = true;
  auto r = discretize(pde, o);
  ASSERT_EQ(r.kernels.size(), 3u);  // one staggered sweep per axis + main
  ASSERT_TRUE(r.flux_field.has_value());
  EXPECT_EQ((*r.flux_field)->components(), 2);  // one flux per dim
  const auto& stag_x = r.kernels[0];
  const auto& stag_y = r.kernels[1];
  const auto& main = r.kernels[2];
  EXPECT_EQ(stag_x.name, "u-split-stag0");
  EXPECT_EQ(stag_x.extent_plus[0], 1);
  EXPECT_EQ(stag_x.extent_plus[1], 0);
  EXPECT_EQ(stag_y.extent_plus[0], 0);
  EXPECT_EQ(stag_y.extent_plus[1], 1);
  EXPECT_EQ(main.extent_plus[0], 0);
  // main kernel reads the flux field
  bool reads_flux = false;
  for (const auto& f : main.reads) {
    reads_flux = reads_flux || f->id() == (*r.flux_field)->id();
  }
  EXPECT_TRUE(reads_flux);
  // the split main kernel does far fewer loads of u than the full variant
  DiscretizeOptions fullo = opts2d();
  auto rf = discretize(pde, fullo);
  EXPECT_LT(count_accesses(main).loads + count_accesses(stag_x).loads +
                count_accesses(stag_y).loads,
            2 * count_accesses(rf.kernels[0]).loads);
}

TEST(DiscretizeTest, SplitAndFullAgreeNumerically) {
  auto src = Field::create("w_src", 2, 1);
  auto dst = Field::create("w_dst", 2, 1);
  PdeUpdate pde;
  pde.name = "w";
  pde.src = src;
  pde.dst = dst;
  Expr flux_term = num(0);
  for (int d = 0; d < 2; ++d) {
    flux_term = flux_term + sym::diff_op((sym::at(src) + 2.0) *
                                             sym::diff_op(sym::at(src), d),
                                         d);
  }
  pde.rhs = {flux_term};

  auto full = discretize(pde, opts2d());
  DiscretizeOptions so = opts2d();
  so.split_staggered = true;
  auto split = discretize(pde, so);

  // emulate the two-pass execution on a tiny synthetic field
  const auto fval = [](int dx, int dy) {
    return 0.3 * dx + 0.2 * dy + 0.05 * dx * dx - 0.07 * dy * dy +
           0.11 * dx * dy;
  };
  // full result at the origin
  const double vfull =
      eval_stencil(full.kernels[0].assignments[0].rhs,
                   [&](int dx, int dy, int, int) { return fval(dx, dy); });

  // split: flux values needed at origin (offset 0) and +e_d (offset 1);
  // locate each slot's defining assignment across the per-axis kernels
  const auto flux_at = [&](int slot, int ox, int oy) {
    for (std::size_t ki = 0; ki + 1 < split.kernels.size(); ++ki) {
      for (const auto& a : split.kernels[ki].assignments) {
        if (a.lhs->component() == slot) {
          return eval_stencil(a.rhs, [&](int dx, int dy, int, int) {
            return fval(dx + ox, dy + oy);
          });
        }
      }
    }
    ADD_FAILURE() << "slot " << slot << " not found";
    return 0.0;
  };
  sym::EvalContext ctx;
  ctx.symbols = {{"x0", 0}, {"x1", 0}, {"x2", 0}, {"t", 0}, {"t_step", 0}};
  ctx.field_value = [&](const Expr& fr) -> double {
    if (fr->field()->id() == (*split.flux_field)->id()) {
      return flux_at(fr->component(), fr->offset()[0], fr->offset()[1]);
    }
    return fval(fr->offset()[0], fr->offset()[1]);
  };
  const double vsplit =
      sym::evaluate(split.kernels.back().assignments[0].rhs, ctx);
  EXPECT_NEAR(vfull, vsplit, 1e-12);
}

TEST(DiscretizeTest, ClampOption) {
  auto src = Field::create("p_src", 2, 1);
  auto dst = Field::create("p_dst", 2, 1);
  PdeUpdate pde;
  pde.name = "p";
  pde.src = src;
  pde.dst = dst;
  pde.rhs = {num(100.0)};  // huge positive rhs
  DiscretizeOptions o = opts2d();
  o.clamp_unit_interval = true;
  auto r = discretize(pde, o);
  const double v = eval_stencil(r.kernels[0].assignments[0].rhs,
                                [](int, int, int, int) { return 0.5; });
  EXPECT_DOUBLE_EQ(v, 1.0);
}

// Property: discretized Laplacian converges at 2nd order on smooth fields.
class ConvergenceOrder : public ::testing::TestWithParam<int> {};

TEST_P(ConvergenceOrder, LaplacianSecondOrder) {
  auto phi = Field::create("phi", 2, 1);
  Expr lap = num(0);
  for (int d = 0; d < 2; ++d) {
    lap = lap + sym::diff_op(sym::diff_op(sym::at(phi), d), d);
  }
  const double kx = 0.7 + 0.13 * GetParam(), ky = 1.1 - 0.07 * GetParam();
  const auto f = [&](double x, double y) {
    return std::sin(kx * x) * std::cos(ky * y);
  };
  const double exact = -(kx * kx + ky * ky) * f(0.4, 0.3);
  double err_h = 0, err_h2 = 0;
  for (int lvl = 0; lvl < 2; ++lvl) {
    const double h = lvl == 0 ? 0.02 : 0.01;
    DiscretizeOptions o = opts2d();
    o.dx = h;
    Expr st = discretize_expression(lap, o);
    const double v = eval_stencil(st, [&](int dx, int dy, int, int) {
      return f(0.4 + dx * h, 0.3 + dy * h);
    });
    (lvl == 0 ? err_h : err_h2) = std::abs(v - exact);
  }
  // halving h should reduce the error by ~4
  EXPECT_GT(err_h / err_h2, 3.5);
  EXPECT_LT(err_h / err_h2, 4.5);
}

INSTANTIATE_TEST_SUITE_P(Waves, ConvergenceOrder, ::testing::Range(0, 6));

}  // namespace
}  // namespace pfc::fd
