#include <gtest/gtest.h>

#include "pfc/field/array.hpp"

namespace pfc {
namespace {

TEST(ArrayTest, LayoutAndStrides) {
  auto f = Field::create("phi", 3, 4);
  Array a(f, {10, 6, 5}, 1);
  EXPECT_EQ(a.stride(0), 1);
  // x line = 10 + 2 ghosts = 12 -> padded to 16
  EXPECT_EQ(a.stride(1), 16);
  EXPECT_EQ(a.stride(2), 16 * 8);
  EXPECT_EQ(a.component_stride(), 16 * 8 * 7);
  EXPECT_EQ(a.allocated(), 4 * 16 * 8 * 7);
}

TEST(ArrayTest, OriginIsAligned) {
  auto f = Field::create("phi", 3, 1);
  Array a(f, {8, 8, 8}, 1);
  // line starts (x = 0 of any line) must be aligned to the padding grid
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a.origin(0) - 1) % 64, 0u)
      << "ghost start of line should be 64B aligned";
}

TEST(ArrayTest, InteriorAndGhostAccess) {
  auto f = Field::create("phi", 3, 2);
  Array a(f, {4, 4, 4}, 1);
  a.at(0, 0, 0, 0) = 1.5;
  a.at(-1, -1, -1, 1) = 2.5;
  a.at(4, 4, 4, 1) = 3.5;
  EXPECT_DOUBLE_EQ(a.at(0, 0, 0, 0), 1.5);
  EXPECT_DOUBLE_EQ(a.at(-1, -1, -1, 1), 2.5);
  EXPECT_DOUBLE_EQ(a.at(4, 4, 4, 1), 3.5);
}

TEST(ArrayTest, OutOfRangeThrows) {
  auto f = Field::create("phi", 3, 1);
  Array a(f, {4, 4, 4}, 1);
  EXPECT_THROW(a.at(5, 0, 0, 0), Error);
  EXPECT_THROW(a.at(0, 0, 0, 1), Error);
}

TEST(ArrayTest, TwoDimensionalHasNoZGhosts) {
  auto f = Field::create("phi", 2, 1);
  Array a(f, {8, 8, 1}, 2);
  EXPECT_NO_THROW(a.at(-2, -2, 0));
  EXPECT_THROW(a.at(0, 0, 1), Error);
  EXPECT_THROW(Array(f, {8, 8, 2}, 1), Error);  // unused dim must be 1
}

TEST(ArrayTest, FillSwapDiffSum) {
  auto f = Field::create("phi", 3, 1);
  Array a(f, {4, 4, 4}, 1), b(f, {4, 4, 4}, 1);
  a.fill(1.0);
  b.fill(3.0);
  EXPECT_DOUBLE_EQ(Array::max_abs_diff(a, b), 2.0);
  EXPECT_DOUBLE_EQ(a.interior_sum(), 64.0);
  a.swap(b);
  EXPECT_DOUBLE_EQ(a.interior_sum(), 192.0);
  b.copy_from(a);
  EXPECT_DOUBLE_EQ(Array::max_abs_diff(a, b), 0.0);
}

TEST(ArrayTest, FillComponentIsolated) {
  auto f = Field::create("phi", 3, 3);
  Array a(f, {4, 4, 4}, 1);
  a.fill_component(1, 7.0);
  EXPECT_DOUBLE_EQ(a.at(2, 2, 2, 0), 0.0);
  EXPECT_DOUBLE_EQ(a.at(2, 2, 2, 1), 7.0);
  EXPECT_DOUBLE_EQ(a.at(2, 2, 2, 2), 0.0);
}

}  // namespace
}  // namespace pfc
