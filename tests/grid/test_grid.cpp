// Block forest, boundary fills, ghost exchange and in-process MPI tests.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <set>

#include "pfc/grid/blockforest.hpp"
#include "pfc/grid/ghost_exchange.hpp"
#include "pfc/grid/vtk.hpp"
#include "pfc/mpi/simmpi.hpp"

namespace pfc::grid {
namespace {

TEST(MortonTest, OrderAndUniqueness) {
  EXPECT_EQ(morton_encode(0, 0, 0), 0u);
  EXPECT_EQ(morton_encode(1, 0, 0), 1u);
  EXPECT_EQ(morton_encode(0, 1, 0), 2u);
  EXPECT_EQ(morton_encode(1, 1, 0), 3u);
  EXPECT_EQ(morton_encode(0, 0, 1), 4u);
  std::set<std::uint64_t> seen;
  for (std::uint32_t z = 0; z < 8; ++z) {
    for (std::uint32_t y = 0; y < 8; ++y) {
      for (std::uint32_t x = 0; x < 8; ++x) {
        EXPECT_TRUE(seen.insert(morton_encode(x, y, z)).second);
      }
    }
  }
}

TEST(BlockForestTest, PartitionInvariants) {
  BlockForest f({64, 64, 32}, {4, 4, 2}, 5, 3);
  EXPECT_EQ(f.blocks().size(), 32u);
  // every cell covered exactly once
  long long volume = 0;
  for (const auto& b : f.blocks()) {
    volume += b.size[0] * b.size[1] * b.size[2];
    EXPECT_EQ(b.size[0], 16);
    EXPECT_EQ(b.size[1], 16);
    EXPECT_EQ(b.size[2], 16);
  }
  EXPECT_EQ(volume, 64ll * 64 * 32);
  // all ranks used, near-equal loads
  const auto [mx, mn] = f.rank_load_extremes();
  EXPECT_GE(mn, 32 / 5);
  EXPECT_LE(mx, 32 / 5 + 1);
}

TEST(BlockForestTest, UnevenDivisionRejected) {
  EXPECT_THROW(BlockForest({65, 64, 1}, {4, 4, 1}, 2, 2), Error);
}

TEST(BlockForestTest, NeighborsPeriodicAndWalls) {
  BlockForest fp({32, 32, 1}, {4, 2, 1}, 1, 2, BoundaryKind::Periodic);
  const Block& corner = fp.block_at({0, 0, 0});
  const Block* left = fp.neighbor(corner, 0, -1);
  ASSERT_NE(left, nullptr);
  EXPECT_EQ(left->index[0], 3);  // wrapped

  BlockForest fw({32, 32, 1}, {4, 2, 1}, 1, 2, BoundaryKind::ZeroGradient);
  EXPECT_EQ(fw.neighbor(fw.block_at({0, 0, 0}), 0, -1), nullptr);
  const Block* right = fw.neighbor(fw.block_at({0, 0, 0}), 0, +1);
  ASSERT_NE(right, nullptr);
  EXPECT_EQ(right->index[0], 1);
}

TEST(BlockForestTest, MortonChunksAreSpatiallyCompact) {
  // consecutive blocks on the curve differ in exactly one step most of the
  // time; at least verify each rank's chunk is contiguous in linear_id
  BlockForest f({64, 64, 64}, {4, 4, 4}, 8, 3);
  for (int r = 0; r < 8; ++r) {
    auto blocks = f.blocks_of_rank(r);
    ASSERT_FALSE(blocks.empty());
    for (std::size_t i = 1; i < blocks.size(); ++i) {
      EXPECT_EQ(blocks[i]->linear_id, blocks[i - 1]->linear_id + 1);
    }
  }
}

TEST(BoundaryTest, PeriodicFillsCorners) {
  auto fld = Field::create("b", 2, 1);
  Array a(fld, {4, 4, 1}, 1);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) a.at(x, y, 0) = 10.0 * x + y;
  }
  fill_ghosts(a, BoundaryKind::Periodic);
  EXPECT_DOUBLE_EQ(a.at(-1, 0, 0), a.at(3, 0, 0));
  EXPECT_DOUBLE_EQ(a.at(4, 2, 0), a.at(0, 2, 0));
  // corner ghost: periodic wrap in both axes
  EXPECT_DOUBLE_EQ(a.at(-1, -1, 0), a.at(3, 3, 0));
  EXPECT_DOUBLE_EQ(a.at(4, 4, 0), a.at(0, 0, 0));
}

TEST(BoundaryTest, ZeroGradientCopiesEdge) {
  auto fld = Field::create("b", 2, 1);
  Array a(fld, {4, 4, 1}, 2);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) a.at(x, y, 0) = 10.0 * x + y;
  }
  fill_ghosts(a, BoundaryKind::ZeroGradient);
  EXPECT_DOUBLE_EQ(a.at(-1, 2, 0), a.at(0, 2, 0));
  EXPECT_DOUBLE_EQ(a.at(-2, 2, 0), a.at(0, 2, 0));
  EXPECT_DOUBLE_EQ(a.at(5, 1, 0), a.at(3, 1, 0));
  EXPECT_DOUBLE_EQ(a.at(-1, -1, 0), a.at(0, 0, 0));
}

/// Fills an array from a global function of cell coordinates.
void fill_global(Array& a, const Block& b,
                 const std::function<double(long long, long long, long long,
                                            int)>& f) {
  for (int c = 0; c < a.components(); ++c) {
    for (long long z = 0; z < b.size[2]; ++z) {
      for (long long y = 0; y < b.size[1]; ++y) {
        for (long long x = 0; x < b.size[0]; ++x) {
          a.at(x, y, z, c) = f(x + b.offset[0], y + b.offset[1],
                               z + b.offset[2], c);
        }
      }
    }
  }
}

double global_pattern(long long x, long long y, long long z, int c) {
  return std::sin(0.1 * double(x)) + 10.0 * double(y) + 100.0 * double(z) +
         1000.0 * c;
}

TEST(GhostExchangeTest, SerialMultiBlockPeriodic) {
  BlockForest f({16, 16, 1}, {2, 2, 1}, 1, 2, BoundaryKind::Periodic);
  auto fld = Field::create("u", 2, 2);
  std::vector<std::unique_ptr<Array>> arrays;
  std::vector<LocalBlockField> view;
  for (const auto& b : f.blocks()) {
    arrays.push_back(
        std::make_unique<Array>(fld, std::array<std::int64_t, 3>{8, 8, 1}, 1));
    fill_global(*arrays.back(), b, global_pattern);
    view.push_back({&b, arrays.back().get()});
  }
  GhostExchange ex(f, nullptr);
  ex.exchange(view, 0);

  // every ghost must equal the periodic global pattern
  for (std::size_t i = 0; i < view.size(); ++i) {
    const Block& b = *view[i].block;
    const Array& a = *view[i].array;
    for (int c = 0; c < 2; ++c) {
      for (long long y = -1; y < 9; ++y) {
        for (long long x = -1; x < 9; ++x) {
          const long long gx = (x + b.offset[0] + 16) % 16;
          const long long gy = (y + b.offset[1] + 16) % 16;
          ASSERT_DOUBLE_EQ(a.at(x, y, 0, c), global_pattern(gx, gy, 0, c))
              << "block " << b.index[0] << "," << b.index[1] << " ghost ("
              << x << "," << y << ") c=" << c;
        }
      }
    }
  }
}

TEST(GhostExchangeTest, DistributedMatchesGlobalPattern3D) {
  mpi::run(3, [&](mpi::Comm& comm) {
    BlockForest f({12, 12, 12}, {2, 2, 2}, comm.size(), 3,
                  BoundaryKind::Periodic);
    auto fld = Field::create("u3", 3, 1);
    std::vector<std::unique_ptr<Array>> arrays;
    std::vector<LocalBlockField> view;
    for (const auto* b : f.blocks_of_rank(comm.rank())) {
      arrays.push_back(std::make_unique<Array>(
          fld, std::array<std::int64_t, 3>{6, 6, 6}, 1));
      fill_global(*arrays.back(), *b, global_pattern);
      view.push_back({b, arrays.back().get()});
    }
    GhostExchange ex(f, &comm);
    ex.exchange(view, 0);
    EXPECT_GT(ex.last_bytes_sent(), 0u);

    for (const auto& lf : view) {
      const Block& b = *lf.block;
      const Array& a = *lf.array;
      for (long long z = -1; z < 7; ++z) {
        for (long long y = -1; y < 7; ++y) {
          for (long long x = -1; x < 7; ++x) {
            const long long gx = (x + b.offset[0] + 12) % 12;
            const long long gy = (y + b.offset[1] + 12) % 12;
            const long long gz = (z + b.offset[2] + 12) % 12;
            ASSERT_DOUBLE_EQ(a.at(x, y, z), global_pattern(gx, gy, gz, 0));
          }
        }
      }
    }
  });
}

TEST(GhostExchangeTest, ZeroGradientAtDomainWalls) {
  BlockForest f({8, 8, 1}, {2, 1, 1}, 1, 2, BoundaryKind::ZeroGradient);
  auto fld = Field::create("w", 2, 1);
  std::vector<std::unique_ptr<Array>> arrays;
  std::vector<LocalBlockField> view;
  for (const auto& b : f.blocks()) {
    arrays.push_back(
        std::make_unique<Array>(fld, std::array<std::int64_t, 3>{4, 8, 1}, 1));
    fill_global(*arrays.back(), b, global_pattern);
    view.push_back({&b, arrays.back().get()});
  }
  GhostExchange ex(f, nullptr);
  ex.exchange(view, 0);
  const Array& left = *view[0].array;
  EXPECT_DOUBLE_EQ(left.at(-1, 3, 0), left.at(0, 3, 0));  // wall
  EXPECT_DOUBLE_EQ(left.at(4, 3, 0), global_pattern(4, 3, 0, 0));  // seam
}

TEST(VtkTest, WritesValidHeader) {
  auto fld = Field::create("v", 2, 2);
  Array a(fld, {4, 3, 1}, 1);
  a.fill(1.5);
  const std::string path = "/tmp/pfc_test_out.vtk";
  write_vtk(path, {&a}, 0.5);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "# vtk DataFile Version 3.0");
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("DIMENSIONS 4 3 1"), std::string::npos);
  EXPECT_NE(all.find("SCALARS v_0 double 1"), std::string::npos);
  EXPECT_NE(all.find("SCALARS v_1 double 1"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pfc::grid

namespace pfc::mpi {
namespace {

TEST(SimMpiTest, PointToPoint) {
  run(2, [](Comm& c) {
    if (c.rank() == 0) {
      const double v = 42.5;
      c.send(1, 7, &v, sizeof v);
    } else {
      double v = 0;
      c.recv(0, 7, &v, sizeof v);
      EXPECT_DOUBLE_EQ(v, 42.5);
    }
  });
}

TEST(SimMpiTest, FifoPerChannel) {
  run(2, [](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 10; ++i) c.send(1, 1, &i, sizeof i);
    } else {
      for (int i = 0; i < 10; ++i) {
        int v = -1;
        c.recv(0, 1, &v, sizeof v);
        EXPECT_EQ(v, i);
      }
    }
  });
}

TEST(SimMpiTest, TagsIndependent) {
  run(2, [](Comm& c) {
    if (c.rank() == 0) {
      const int a = 1, b = 2;
      c.send(1, 100, &a, sizeof a);
      c.send(1, 200, &b, sizeof b);
    } else {
      int b = 0, a = 0;
      c.recv(0, 200, &b, sizeof b);  // out of order by tag
      c.recv(0, 100, &a, sizeof a);
      EXPECT_EQ(a, 1);
      EXPECT_EQ(b, 2);
    }
  });
}

TEST(SimMpiTest, NonblockingRoundTrip) {
  run(4, [](Comm& c) {
    const int next = (c.rank() + 1) % c.size();
    const int prev = (c.rank() + c.size() - 1) % c.size();
    double out = 10.0 * c.rank();
    double in = -1;
    auto rr = c.irecv(prev, 5, &in, sizeof in);
    auto sr = c.isend(next, 5, &out, sizeof out);
    c.wait(rr);
    c.wait(sr);
    EXPECT_DOUBLE_EQ(in, 10.0 * prev);
  });
}

TEST(SimMpiTest, Collectives) {
  run(5, [](Comm& c) {
    EXPECT_DOUBLE_EQ(c.allreduce_sum(double(c.rank())), 0 + 1 + 2 + 3 + 4);
    EXPECT_DOUBLE_EQ(c.allreduce_max(double(c.rank() % 3)), 2.0);
    c.barrier();
    // a second round must not see stale values
    EXPECT_DOUBLE_EQ(c.allreduce_sum(1.0), 5.0);
  });
}

TEST(SimMpiTest, SizeMismatchThrows) {
  EXPECT_THROW(run(2,
                   [](Comm& c) {
                     if (c.rank() == 0) {
                       double v = 1;
                       c.send(1, 3, &v, sizeof v);
                       float w = 0;  // wrong size on purpose
                       c.recv(1, 4, &w, sizeof w);
                     } else {
                       double v = 0;
                       c.recv(0, 3, &v, sizeof v);
                       c.send(0, 4, &v, sizeof v);
                     }
                   }),
               Error);
}

}  // namespace
}  // namespace pfc::mpi
