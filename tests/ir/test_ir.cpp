// IR construction, hoisting, op counting, passes.
#include <gtest/gtest.h>

#include "pfc/fd/discretize.hpp"
#include "pfc/ir/kernel.hpp"
#include "pfc/ir/opcount.hpp"
#include "pfc/ir/passes.hpp"
#include "pfc/sym/printer.hpp"

namespace pfc::ir {
namespace {

using sym::Expr;
using sym::num;

fd::StencilKernel simple_stencil() {
  auto src = Field::create("a_src", 3, 1);
  auto dst = Field::create("a_dst", 3, 1);
  fd::PdeUpdate pde;
  pde.name = "a";
  pde.src = src;
  pde.dst = dst;
  Expr lap = num(0);
  for (int d = 0; d < 3; ++d) {
    lap = lap + sym::diff_op(sym::diff_op(sym::at(src), d), d);
  }
  pde.rhs = {lap};
  fd::DiscretizeOptions o;
  o.dims = 3;
  return fd::discretize(pde, o).kernels[0];
}

TEST(IrBuildTest, FieldsAndStores) {
  Kernel k = build_kernel(simple_stencil());
  EXPECT_EQ(k.fields.size(), 2u);
  EXPECT_EQ(k.writes.size(), 1u);
  EXPECT_EQ(k.reads.size(), 1u);
  EXPECT_FALSE(k.uses_time);
  const auto radius = k.access_radius();
  EXPECT_EQ(radius[0], 1);
}

TEST(IrBuildTest, TemperatureHoisting) {
  // a T(z, t)-dependent factor must be hoisted to the z level
  auto src = Field::create("b_src", 3, 1);
  auto dst = Field::create("b_dst", 3, 1);
  // T = 1 + 0.01 (z - 0.5 t); rhs = exp(T)*laplacian — exp(T) hoistable
  Expr T = 1.0 + 0.01 * (sym::coord(2) - 0.5 * sym::time());
  Expr lap = num(0);
  for (int d = 0; d < 3; ++d) {
    lap = lap + sym::diff_op(sym::diff_op(sym::at(src), d), d);
  }
  fd::PdeUpdate pde;
  pde.name = "b";
  pde.src = src;
  pde.dst = dst;
  // use exp(T) twice so CSE extracts it
  pde.rhs = {sym::exp_(T) * lap + sym::exp_(T)};
  fd::DiscretizeOptions o;
  o.dims = 3;
  Kernel k = build_kernel(fd::discretize(pde, o).kernels[0]);
  EXPECT_TRUE(k.uses_time);
  const auto hoisted = k.at_level(Level::PerZ);
  ASSERT_FALSE(hoisted.empty())
      << "temperature-dependent subexpression was not hoisted";
  // hoisted code must not be counted in per-cell FLOPs
  const OpCounts ops = count_ops(k);
  EXPECT_EQ(ops.transcendental, 0) << "exp(T) counted per cell";
}

TEST(IrBuildTest, HoistingCanBeDisabled) {
  auto src = Field::create("c_src", 3, 1);
  auto dst = Field::create("c_dst", 3, 1);
  Expr T = sym::coord(2) * 2.0;
  fd::PdeUpdate pde;
  pde.name = "c";
  pde.src = src;
  pde.dst = dst;
  pde.rhs = {sym::exp_(T) * sym::at(src) + sym::exp_(T)};
  fd::DiscretizeOptions o;
  o.dims = 3;
  BuildOptions bo;
  bo.hoist_invariants = false;
  Kernel k = build_kernel(fd::discretize(pde, o).kernels[0], bo);
  EXPECT_TRUE(k.at_level(Level::PerZ).empty());
  EXPECT_GT(count_ops(k).transcendental, 0);
}

TEST(IrBuildTest, ScalarParameterDiscovery) {
  auto src = Field::create("d_src", 3, 1);
  auto dst = Field::create("d_dst", 3, 1);
  Expr gamma = sym::symbol("gamma");
  fd::PdeUpdate pde;
  pde.name = "d";
  pde.src = src;
  pde.dst = dst;
  pde.rhs = {gamma * sym::at(src)};
  fd::DiscretizeOptions o;
  o.dims = 3;
  Kernel k = build_kernel(fd::discretize(pde, o).kernels[0]);
  ASSERT_EQ(k.scalar_params.size(), 1u);
  EXPECT_EQ(k.scalar_params[0]->name(), "gamma");
}

TEST(OpCountTest, BasicExpressions) {
  Expr x = sym::symbol("x"), y = sym::symbol("y");
  EXPECT_EQ(count_ops(x + y).adds, 1);
  EXPECT_EQ(count_ops(x * y).muls, 1);
  EXPECT_EQ(count_ops(x - y).adds, 1);
  EXPECT_EQ(count_ops(x - y).muls, 0);  // negation folds into subtract
  EXPECT_EQ(count_ops(x / y).divs, 1);
  EXPECT_EQ(count_ops(x / y).muls, 0);
  EXPECT_EQ(count_ops(sym::pow(x, 3)).muls, 2);
  EXPECT_EQ(count_ops(sym::sqrt_(x)).sqrts, 1);
  EXPECT_EQ(count_ops(sym::rsqrt(x)).rsqrts, 1);
  EXPECT_EQ(count_ops(sym::pow(x, num(-0.5))).rsqrts, 1);
  EXPECT_EQ(count_ops(sym::min_(x, y)).blends, 1);
}

TEST(OpCountTest, CombinedDenominator) {
  Expr x = sym::symbol("x"), y = sym::symbol("y"), z = sym::symbol("z");
  // x / (y z): one division, one mul for the denominator product
  OpCounts c = count_ops(x * sym::pow(y, -1) * sym::pow(z, -1));
  EXPECT_EQ(c.divs, 1);
  EXPECT_EQ(c.muls, 1);
}

TEST(OpCountTest, NormalizedWeights) {
  OpCounts c;
  c.adds = 2;
  c.muls = 3;
  c.divs = 1;
  c.sqrts = 1;
  c.rsqrts = 2;
  EXPECT_EQ(c.normalized_flops(), 2 + 3 + 16 + 10 + 4);
}

TEST(PassesTest, RematerializeCheapTemp) {
  auto src = Field::create("e_src", 3, 1);
  auto dst = Field::create("e_dst", 3, 1);
  fd::PdeUpdate pde;
  pde.name = "e";
  pde.src = src;
  pde.dst = dst;
  // (a+b) reused: CSE extracts it; remat with generous cost puts it back.
  // (multiply by a non-number so canonicalization does not distribute)
  Expr a = sym::at(src), b = sym::shifted(sym::at(src), 0, 1);
  pde.rhs = {(a + b) * a + sym::sqrt_(a + b)};
  fd::DiscretizeOptions o;
  o.dims = 3;
  Kernel k = build_kernel(fd::discretize(pde, o).kernels[0]);
  const std::size_t temps_before = k.num_temps();
  ASSERT_GE(temps_before, 1u);
  const std::size_t inlined = rematerialize(k, {.max_cost = 5, .max_uses = 8});
  EXPECT_GE(inlined, 1u);
  EXPECT_LT(k.num_temps(), temps_before);
}

TEST(PassesTest, DeadCodeElimination) {
  Kernel k = build_kernel(simple_stencil());
  // inject a dead temp
  k.body.insert(k.body.begin(),
                {{sym::symbol("dead"), num(1.0) + sym::symbol("alsodead")},
                 Level::Body});
  const std::size_t n = k.body.size();
  EXPECT_EQ(eliminate_dead_code(k), 1u);
  EXPECT_EQ(k.body.size(), n - 1);
}

TEST(PassesTest, FencesEveryStride) {
  Kernel k = build_kernel(simple_stencil());
  std::size_t body_stmts = 0;
  for (const auto& sa : k.body) {
    if (sa.level == Level::Body) ++body_stmts;
  }
  const std::size_t nf = insert_thread_fences(k, 2);
  EXPECT_EQ(nf, body_stmts / 2);
}

TEST(PassesTest, FoldParameters) {
  auto src = Field::create("g_src", 3, 1);
  auto dst = Field::create("g_dst", 3, 1);
  Expr gamma = sym::symbol("gamma");
  fd::PdeUpdate pde;
  pde.name = "g";
  pde.src = src;
  pde.dst = dst;
  pde.rhs = {gamma * sym::at(src) + gamma * gamma};
  fd::DiscretizeOptions o;
  o.dims = 3;
  Kernel k = build_kernel(fd::discretize(pde, o).kernels[0]);
  ASSERT_EQ(k.scalar_params.size(), 1u);
  const OpCounts before = count_ops(k);
  fold_parameters(k, {{"gamma", 2.0}});
  EXPECT_TRUE(k.scalar_params.empty());
  // gamma*gamma folded to 4: fewer multiplies per cell
  EXPECT_LT(count_ops(k).muls, before.muls);
}

}  // namespace
}  // namespace pfc::ir
