// Register-minimizing scheduler tests.
#include <gtest/gtest.h>

#include "pfc/ir/schedule.hpp"
#include "pfc/sym/printer.hpp"

namespace pfc::ir {
namespace {

using sym::Expr;
using sym::num;

/// Builds a kernel whose naive order keeps many temps alive: all `width`
/// producer temps first, then pairwise consumers storing to independent
/// components. The optimal schedule interleaves producer pairs with their
/// consumer (2 live temps); the naive order holds all `width` alive.
Kernel wide_kernel(int width) {
  auto src = Field::create("s" + std::to_string(width), 3, 1);
  auto dst = Field::create("d" + std::to_string(width), 3, width / 2);
  Kernel k;
  k.name = "wide";
  k.dims = 3;
  k.fields = {src, dst};
  k.reads = {src};
  k.writes = {dst};
  std::vector<Expr> temps;
  for (int i = 0; i < width; ++i) {
    Expr t = sym::symbol("t" + std::to_string(i));
    k.body.push_back(
        {{t, sym::shifted(sym::at(src), 0, i) * double(i + 1)},
         Level::Body});
    temps.push_back(t);
  }
  for (int i = 0; i + 1 < width; i += 2) {
    k.body.push_back({{sym::at(dst, i / 2),
                       temps[std::size_t(i)] + temps[std::size_t(i) + 1]},
                      Level::Body});
  }
  return k;
}

TEST(ScheduleTest, DependencyGraphShape) {
  Kernel k = wide_kernel(6);
  DependencyGraph g = build_dependency_graph(k);
  EXPECT_EQ(g.deps.size(), k.body.size());
  // first 6 loads have no deps
  for (int i = 0; i < 6; ++i) EXPECT_TRUE(g.deps[std::size_t(i)].empty());
  // consumer stores depend on exactly two producer temps
  for (std::size_t i = 6; i < 9; ++i) EXPECT_EQ(g.deps[i].size(), 2u);
}

TEST(ScheduleTest, ReducesMaxLive) {
  Kernel k = wide_kernel(16);
  const std::size_t before = max_live_temps(k);
  EXPECT_GE(before, 16u);  // all 16 loads alive at once in naive order
  ScheduleResult r = schedule_min_register(k);
  EXPECT_EQ(r.max_live_before, before);
  EXPECT_LE(r.max_live_after, 3u) << "interleaved order should keep only a "
                                     "couple of temps alive";
  EXPECT_EQ(max_live_temps(k), r.max_live_after);
}

TEST(ScheduleTest, PreservesSemantics) {
  Kernel k = wide_kernel(10);
  schedule_min_register(k);
  // defs must still dominate uses
  std::vector<std::string> defined;
  for (const auto& sa : k.body) {
    sym::for_each(sa.assign.rhs, [&](const Expr& e) {
      if (e->kind() == sym::Kind::Symbol &&
          e->builtin() == sym::Builtin::None) {
        EXPECT_NE(std::find(defined.begin(), defined.end(), e->name()),
                  defined.end())
            << "use of " << e->name() << " before def";
      }
    });
    if (sa.assign.lhs->kind() == sym::Kind::Symbol) {
      defined.push_back(sa.assign.lhs->name());
    }
  }
}

TEST(ScheduleTest, GreedyBeamIsWorseOrEqual) {
  Kernel k1 = wide_kernel(20);
  Kernel k2 = wide_kernel(20);
  ScheduleOptions greedy;
  greedy.beam_width = 1;
  ScheduleOptions wide;
  wide.beam_width = 24;
  const auto rg = schedule_min_register(k1, greedy);
  const auto rw = schedule_min_register(k2, wide);
  EXPECT_LE(rw.max_live_after, rg.max_live_after);
}

TEST(ScheduleTest, EmptyKernel) {
  Kernel k;
  k.name = "empty";
  EXPECT_EQ(max_live_temps(k), 0u);
  const auto r = schedule_min_register(k);
  EXPECT_EQ(r.max_live_after, 0u);
}

}  // namespace
}  // namespace pfc::ir
