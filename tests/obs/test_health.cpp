// In-situ physics health monitoring: scan semantics over raw arrays, the
// Ignore/Warn/Throw policy contract, and the driver integration — an
// injected NaN must be caught by a monitored run under every policy.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "pfc/app/params.hpp"
#include "pfc/app/simulation.hpp"
#include "pfc/field/array.hpp"
#include "pfc/obs/health.hpp"

namespace pfc::obs {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// 4x4 two-phase block whose cells all hold (a, b) — Σφ = a + b.
Array make_phi(double a, double b) {
  Array arr(Field::create("phi", 2, 2), {4, 4, 1}, 1);
  for (long long y = 0; y < 4; ++y) {
    for (long long x = 0; x < 4; ++x) {
      arr.at(x, y, 0, 0) = a;
      arr.at(x, y, 0, 1) = b;
    }
  }
  return arr;
}

Array make_mu(double v) {
  Array arr(Field::create("mu", 2, 1), {4, 4, 1}, 1);
  for (long long y = 0; y < 4; ++y) {
    for (long long x = 0; x < 4; ++x) arr.at(x, y, 0, 0) = v;
  }
  return arr;
}

TEST(HealthPolicyTest, NamesRoundTripAndRejectUnknown) {
  for (const HealthPolicy p :
       {HealthPolicy::Ignore, HealthPolicy::Warn, HealthPolicy::Throw}) {
    EXPECT_EQ(parse_health_policy(health_policy_name(p)), p);
  }
  EXPECT_THROW(parse_health_policy("panic"), Error);
}

TEST(HealthMonitorTest, DisabledMonitorIsNoOp) {
  HealthMonitor mon(HealthOptions{});
  EXPECT_FALSE(mon.enabled());
  EXPECT_FALSE(mon.due(1));
  const Array phi = make_phi(kNaN, 0.5);
  mon.scan_block(phi, nullptr);
  mon.finish_scan(1);
  EXPECT_EQ(mon.stats().checks, 0);
}

TEST(HealthMonitorTest, DueRespectsScanPeriod) {
  HealthMonitor mon(HealthOptions{}.enable().every(3));
  EXPECT_FALSE(mon.due(0)) << "scans run after completed steps only";
  EXPECT_FALSE(mon.due(2));
  EXPECT_TRUE(mon.due(3));
  EXPECT_TRUE(mon.due(6));
  EXPECT_THROW(HealthMonitor(HealthOptions{}.enable().every(0)), Error);
}

TEST(HealthMonitorTest, CleanStatePassesAllChecks) {
  Registry reg;
  HealthMonitor mon(HealthOptions{}.enable(), &reg);
  const Array phi = make_phi(0.25, 0.75);
  const Array mu = make_mu(0.1);
  mon.scan_block(phi, &mu);
  mon.finish_scan(1);
  const HealthStats& s = mon.stats();
  EXPECT_EQ(s.checks, 1);
  EXPECT_EQ(s.total_violations(), 0u);
  EXPECT_LT(s.max_phase_sum_error, 1e-12);
  EXPECT_LT(s.conservation_drift, 1e-12);
  EXPECT_EQ(reg.counter_value("health/checks"), 1u);
}

TEST(HealthMonitorTest, CountsEachViolationKind) {
  Registry reg;
  HealthMonitor mon(HealthOptions{}.enable(), &reg);
  Array phi = make_phi(0.25, 0.75);
  phi.at(0, 0, 0, 0) = kNaN;   // non-finite
  phi.at(1, 0, 0, 0) = 1.2;    // outside [0,1] and breaks Σφ = 1
  Array mu = make_mu(0.0);
  mu.at(2, 2, 0, 0) = 1e9;     // beyond mu_limit
  mon.scan_block(phi, &mu);
  mon.finish_scan(1);
  const HealthStats& s = mon.stats();
  EXPECT_EQ(s.nonfinite_values, 1u);
  EXPECT_EQ(s.simplex_violations, 1u);
  EXPECT_EQ(s.phase_sum_violations, 1u);
  EXPECT_EQ(s.mu_blowups, 1u);
  EXPECT_EQ(s.total_violations(), 4u);
  EXPECT_NEAR(s.max_phase_sum_error, 0.95, 1e-12);
  EXPECT_EQ(reg.counter_value("health/nonfinite_values"), 1u);
  EXPECT_EQ(reg.counter_value("health/mu_blowups"), 1u);
}

TEST(HealthMonitorTest, ConservationDriftTracksAveragePhaseSum) {
  HealthOptions o = HealthOptions{}.enable();
  o.phase_sum_tol = 0.1;  // per-cell check stays quiet
  HealthMonitor mon(o);
  const Array phi = make_phi(0.5, 0.51);  // every cell sums to 1.01
  mon.scan_block(phi, nullptr);
  mon.finish_scan(1);
  EXPECT_EQ(mon.stats().phase_sum_violations, 0u);
  EXPECT_NEAR(mon.stats().conservation_drift, 0.01, 1e-12);
}

TEST(HealthMonitorTest, MultiBlockScanAggregatesBeforePolicy) {
  HealthMonitor mon(HealthOptions{}.enable().with_policy(
      HealthPolicy::Throw));
  Array bad = make_phi(0.25, 0.75);
  bad.at(0, 0, 0, 1) = kNaN;
  const Array good = make_phi(0.5, 0.5);
  mon.scan_block(good, nullptr);
  mon.scan_block(bad, nullptr);
  EXPECT_THROW(mon.finish_scan(1), Error)
      << "violations from any block fail the joint scan";
  EXPECT_EQ(mon.stats().nonfinite_values, 1u);
}

TEST(HealthMonitorTest, PolicyControlsReaction) {
  Array phi = make_phi(0.25, 0.75);
  phi.at(1, 1, 0, 0) = kNaN;
  {
    HealthMonitor mon(
        HealthOptions{}.enable().with_policy(HealthPolicy::Ignore));
    mon.scan_block(phi, nullptr);
    EXPECT_NO_THROW(mon.finish_scan(1));
    EXPECT_EQ(mon.stats().nonfinite_values, 1u);
  }
  {
    HealthMonitor mon(
        HealthOptions{}.enable().with_policy(HealthPolicy::Warn));
    mon.scan_block(phi, nullptr);
    EXPECT_NO_THROW(mon.finish_scan(1)) << "warn must not abort the run";
  }
  {
    HealthMonitor mon(
        HealthOptions{}.enable().with_policy(HealthPolicy::Throw));
    mon.scan_block(phi, nullptr);
    EXPECT_THROW(mon.finish_scan(1), Error);
  }
}

// --- driver integration: a NaN planted in µ must reach the monitor -------

app::SimulationOptions monitored_opts(HealthPolicy policy) {
  app::SimulationOptions o;
  o.with_cells(16, 16);
  o.compile.backend = app::Backend::Interpreter;
  o.with_health(HealthOptions{}.enable().with_policy(policy));
  return o;
}

void init_fields(app::Simulation& sim, bool poison_mu) {
  sim.init_phi([](long long x, long long, long long, int c) {
    const double s = x < 8 ? 1.0 : 0.0;
    return c == 0 ? s : 1.0 - s;
  });
  sim.init_mu([poison_mu](long long x, long long y, long long, int) {
    return (poison_mu && x == 5 && y == 5) ? kNaN : 0.0;
  });
}

TEST(HealthSimulationTest, CleanRunReportsHealthyState) {
  app::GrandChemModel model(app::make_two_phase(2));
  app::Simulation sim(model, monitored_opts(HealthPolicy::Throw));
  init_fields(sim, false);
  const RunReport rep = sim.run(3);
  EXPECT_EQ(rep.health.checks, 3);
  EXPECT_EQ(rep.health.total_violations(), 0u);
  EXPECT_EQ(rep.health_policy, HealthPolicy::Throw);
  const Json j = rep.to_json();
  ASSERT_NE(j.find("health"), nullptr);
  EXPECT_EQ(j.find("health")->find("policy")->str(), "throw");
}

TEST(HealthSimulationTest, InjectedNanHonorsAllThreePolicies) {
  app::GrandChemModel model(app::make_two_phase(2));
  {
    app::Simulation sim(model, monitored_opts(HealthPolicy::Throw));
    init_fields(sim, true);
    EXPECT_THROW(sim.run(1), Error);
    EXPECT_GT(sim.health().stats().nonfinite_values, 0u);
  }
  {
    app::Simulation sim(model, monitored_opts(HealthPolicy::Warn));
    init_fields(sim, true);
    RunReport rep;
    EXPECT_NO_THROW(rep = sim.run(1));
    EXPECT_GT(rep.health.nonfinite_values, 0u);
  }
  {
    app::Simulation sim(model, monitored_opts(HealthPolicy::Ignore));
    init_fields(sim, true);
    RunReport rep;
    EXPECT_NO_THROW(rep = sim.run(1));
    EXPECT_GT(rep.health.nonfinite_values, 0u)
        << "ignore still counts, it just does not react";
  }
}

}  // namespace
}  // namespace pfc::obs
