// MetricsRegistry (the daemon-wide telemetry spine): lock-free gauge /
// histogram determinism under the thread pool, torn-free snapshots while
// writers keep observing, and the two exposition formats' shapes
// (pfc-serve-metrics-v1 JSON, Prometheus text).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "pfc/obs/metrics.hpp"
#include "pfc/support/assert.hpp"
#include "pfc/support/thread_pool.hpp"

namespace pfc::obs {
namespace {

TEST(MetricsGaugeTest, SetAndAddRoundTrip) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(2.5);
  EXPECT_EQ(g.value(), 2.5);
  g.add(-1.25);
  EXPECT_EQ(g.value(), 1.25);
}

TEST(MetricsGaugeTest, ConcurrentAddIsDeterministic) {
  Gauge g;
  ThreadPool pool(4);
  const std::int64_t n = 100000;
  // 0.25 is exactly representable, so n * 4 threads' worth of CAS adds
  // must sum without rounding slack.
  pool.parallel_for(0, n, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) g.add(0.25);
  });
  EXPECT_EQ(g.value(), double(n) * 0.25);
}

TEST(MetricsHistogramTest, BucketsPartitionTheLine) {
  Histogram h({1.0, 10.0});
  h.observe(0.5);   // <= 1
  h.observe(1.0);   // <= 1 (inclusive upper edge)
  h.observe(5.0);   // <= 10
  h.observe(100.0); // +Inf
  const auto s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 3u);
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 106.5);
}

TEST(MetricsHistogramTest, ConcurrentObserveIsDeterministic) {
  Histogram h({1.0, 2.0, 3.0});
  ThreadPool pool(4);
  const std::int64_t n = 50000;
  pool.parallel_for(0, n, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      h.observe(0.5);
      h.observe(1.5);
      h.observe(9.0);
    }
  });
  const auto s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 4u);
  EXPECT_EQ(s.counts[0], std::uint64_t(n));
  EXPECT_EQ(s.counts[1], std::uint64_t(n));
  EXPECT_EQ(s.counts[2], 0u);
  EXPECT_EQ(s.counts[3], std::uint64_t(n));
  EXPECT_EQ(s.count, std::uint64_t(3 * n));
  // 0.5 + 1.5 + 9.0 = 11.0 is exactly representable
  EXPECT_EQ(s.sum, 11.0 * double(n));
}

TEST(MetricsHistogramTest, SnapshotIsTornFreeUnderConcurrentWriters) {
  Histogram h(Histogram::duration_bounds());
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    double v = 0.001;
    while (!stop.load(std::memory_order_relaxed)) {
      h.observe(v);
      v = v > 400.0 ? 0.001 : v * 1.7;
    }
  });
  // The invariant a reader may rely on mid-flight: the total count always
  // equals the sum of the per-bucket counts (it is derived, not stored).
  for (int i = 0; i < 2000; ++i) {
    const auto s = h.snapshot();
    std::uint64_t bucket_total = 0;
    for (const std::uint64_t c : s.counts) bucket_total += c;
    ASSERT_EQ(s.count, bucket_total) << "torn snapshot at iteration " << i;
  }
  stop.store(true);
  writer.join();
}

TEST(MetricsRegistryTest, FamiliesKeepKindAndRejectConflicts) {
  MetricsRegistry reg;
  Counter& c = reg.counter("pfc_test_total", "help");
  c.add(3);
  EXPECT_EQ(&reg.counter("pfc_test_total", "help"), &c);
  EXPECT_THROW(reg.gauge("pfc_test_total", "help"), Error);
  EXPECT_THROW(reg.counter("bad name", "help"), Error);
  EXPECT_THROW(reg.counter("pfc_nohelp_total", ""), Error);
}

TEST(MetricsRegistryTest, LabeledSeriesAreDistinct) {
  MetricsRegistry reg;
  Gauge& a = reg.gauge("pfc_mlups", "help", {{"preset", "p1"}});
  Gauge& b = reg.gauge("pfc_mlups", "help", {{"preset", "p2"}});
  EXPECT_NE(&a, &b);
  a.set(1.0);
  b.set(2.0);
  EXPECT_EQ(&reg.gauge("pfc_mlups", "help", {{"preset", "p1"}}), &a);
}

TEST(MetricsRegistryTest, JsonSnapshotShape) {
  MetricsRegistry reg;
  reg.counter("pfc_jobs_total", "Jobs seen").add(2);
  reg.gauge("pfc_depth", "Queue depth").set(1.0);
  reg.histogram("pfc_dur_seconds", "Durations", {0.1, 1.0}).observe(0.5);

  const Json j = reg.to_json();
  ASSERT_TRUE(j.find("schema") != nullptr);
  EXPECT_EQ(j.find("schema")->str(), kMetricsSchema);
  const Json* metrics = j.find("metrics");
  ASSERT_TRUE(metrics != nullptr && metrics->is_object());

  const Json* ctr = metrics->find("pfc_jobs_total");
  ASSERT_TRUE(ctr != nullptr);
  EXPECT_EQ(ctr->find("type")->str(), "counter");
  EXPECT_EQ(ctr->find("help")->str(), "Jobs seen");
  ASSERT_EQ(ctr->find("values")->elements().size(), 1u);
  EXPECT_EQ(ctr->find("values")->elements()[0].find("value")->number(), 2.0);

  const Json* hist = metrics->find("pfc_dur_seconds");
  ASSERT_TRUE(hist != nullptr);
  EXPECT_EQ(hist->find("type")->str(), "histogram");
  const Json& v = hist->find("values")->elements()[0];
  EXPECT_EQ(v.find("count")->number(), 1.0);
  EXPECT_EQ(v.find("sum")->number(), 0.5);
  const auto& buckets = v.find("buckets")->elements();
  ASSERT_EQ(buckets.size(), 3u);  // 0.1, 1.0, +Inf — cumulative
  EXPECT_EQ(buckets[0].find("count")->number(), 0.0);
  EXPECT_EQ(buckets[1].find("count")->number(), 1.0);
  EXPECT_EQ(buckets[2].find("count")->number(), 1.0);
  EXPECT_EQ(buckets[2].find("le")->str(), "+Inf");
}

TEST(MetricsRegistryTest, PrometheusExpositionShape) {
  MetricsRegistry reg;
  reg.counter("pfc_jobs_total", "Jobs seen").add(2);
  reg.gauge("pfc_mlups", "Live MLUPS", {{"preset", "two_phase"}}).set(12.5);
  reg.histogram("pfc_dur_seconds", "Durations", {0.1, 1.0}).observe(0.5);

  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("# HELP pfc_jobs_total Jobs seen\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pfc_jobs_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("pfc_jobs_total 2\n"), std::string::npos);
  EXPECT_NE(text.find("pfc_mlups{preset=\"two_phase\"} 12.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE pfc_dur_seconds histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("pfc_dur_seconds_bucket{le=\"0.1\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("pfc_dur_seconds_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("pfc_dur_seconds_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("pfc_dur_seconds_sum 0.5\n"), std::string::npos);
  EXPECT_NE(text.find("pfc_dur_seconds_count 1\n"), std::string::npos);
}

TEST(MetricsRegistryTest, ValidMetricNames) {
  EXPECT_TRUE(valid_metric_name("pfc_jobs_total"));
  EXPECT_TRUE(valid_metric_name("a:b_c9"));
  EXPECT_FALSE(valid_metric_name(""));
  EXPECT_FALSE(valid_metric_name("9leading"));
  EXPECT_FALSE(valid_metric_name("has space"));
  EXPECT_FALSE(valid_metric_name("has-dash"));
}

}  // namespace
}  // namespace pfc::obs
