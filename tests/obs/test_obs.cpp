// Observability subsystem: registry hierarchy, counter determinism under
// the thread pool, JSON round-trips, and the driver/compiler reporting
// contract (RunReport kernel names == CompiledModel kernel IR names).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "pfc/app/params.hpp"
#include "pfc/app/simulation.hpp"
#include "pfc/obs/registry.hpp"
#include "pfc/obs/report.hpp"
#include "pfc/support/thread_pool.hpp"

namespace pfc::obs {
namespace {

TEST(ObsRegistryTest, ScopedTimersComposeHierarchicalPaths) {
  Registry reg;
  {
    ScopedTimer outer(reg, "step");
    {
      ScopedTimer inner(reg, "kernel");
      ScopedTimer leaf(reg, "phi_full");
      EXPECT_EQ(leaf.path(), "step/kernel/phi_full");
    }
    ScopedTimer sibling(reg, "exchange");
    EXPECT_EQ(sibling.path(), "step/exchange");
  }
  const auto timers = reg.timers();
  ASSERT_TRUE(timers.count("step"));
  ASSERT_TRUE(timers.count("step/kernel"));
  ASSERT_TRUE(timers.count("step/kernel/phi_full"));
  ASSERT_TRUE(timers.count("step/exchange"));
  EXPECT_EQ(timers.at("step").count, 1u);
  // a parent's accumulated time covers its children
  EXPECT_GE(timers.at("step").seconds,
            timers.at("step/kernel/phi_full").seconds);
}

TEST(ObsRegistryTest, ScopesOfDifferentRegistriesDoNotNest) {
  Registry a, b;
  ScopedTimer ta(a, "outer");
  ScopedTimer tb(b, "inner");
  EXPECT_EQ(tb.path(), "inner") << "foreign registry must start a new root";
}

TEST(ObsRegistryTest, StepRingWrapsKeepingNewestOldestFirst) {
  Registry reg(4);
  for (long long i = 0; i < 10; ++i) {
    StepStats s;
    s.step = i;
    s.cell_updates = std::uint64_t(i) * 100;
    reg.push_step(s);
  }
  EXPECT_EQ(reg.steps_recorded(), 10);
  const auto recent = reg.recent_steps();
  ASSERT_EQ(recent.size(), 4u) << "ring must cap at its capacity";
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(recent[i].step, (long long)(6 + i))
        << "oldest-first order after wraparound";
    EXPECT_EQ(recent[i].cell_updates, std::uint64_t(6 + i) * 100);
  }
  // exactly at the wrap boundary: capacity pushes leave 0..3 in order
  Registry exact(4);
  for (long long i = 0; i < 4; ++i) {
    StepStats s;
    s.step = i;
    exact.push_step(s);
  }
  const auto full = exact.recent_steps();
  ASSERT_EQ(full.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(full[i].step, (long long)(i));
  }
}

TEST(ObsRegistryTest, CounterDeterministicAcrossThreads) {
  Registry reg;
  Counter& c = reg.counter("updates");
  ThreadPool pool(4);
  const std::int64_t n = 100000;
  pool.parallel_for(0, n, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) c.add(2);
  });
  pool.run_on_all([&](int) { c.add(1); });
  EXPECT_EQ(c.value(), std::uint64_t(2 * n) + std::uint64_t(pool.num_threads()));
  EXPECT_EQ(reg.counter_value("updates"), c.value());
}

TEST(ObsRegistryTest, SafeRateGuardsEmptyDenominators) {
  EXPECT_EQ(safe_rate(5.0, 0.0), 0.0);
  EXPECT_EQ(safe_rate(5.0, -1.0), 0.0);
  EXPECT_EQ(safe_rate(5.0, std::nan("")), 0.0);
  EXPECT_DOUBLE_EQ(safe_rate(6.0, 2.0), 3.0);
  RunReport empty;
  EXPECT_EQ(empty.mlups(), 0.0);
  EXPECT_EQ(empty.exchange_bytes_per_second(), 0.0);
}

TEST(ObsRegistryTest, SafeRateGuardsNonFiniteOperands) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(safe_rate(inf, 2.0), 0.0);
  EXPECT_EQ(safe_rate(std::nan(""), 2.0), 0.0);
  EXPECT_EQ(safe_rate(5.0, inf), 0.0);
  EXPECT_EQ(safe_rate(0.0, 0.0), 0.0);
  EXPECT_EQ(safe_rate(5.0, std::numeric_limits<double>::denorm_min() * 0.0),
            0.0);
  // signed numerators pass through: rates may legitimately be deltas
  EXPECT_DOUBLE_EQ(safe_rate(-6.0, 2.0), -3.0);
}

TEST(ObsRegistryTest, StepRingBufferKeepsTail) {
  Registry reg(/*ring_capacity=*/4);
  for (long long s = 1; s <= 10; ++s) {
    reg.push_step({s, double(s), 0.0, 0, 100});
  }
  EXPECT_EQ(reg.steps_recorded(), 10);
  const auto steps = reg.recent_steps();
  ASSERT_EQ(steps.size(), 4u);
  EXPECT_EQ(steps.front().step, 7);
  EXPECT_EQ(steps.back().step, 10);
  EXPECT_DOUBLE_EQ(steps.back().kernel_seconds, 10.0);
}

TEST(ObsJsonTest, RoundTripPreservesStructure) {
  Json j = Json::object()
               .set("schema", Json(kReportSchema))
               .set("pi", Json(3.141592653589793))
               .set("count", Json(std::uint64_t(42)))
               .set("flag", Json(true))
               .set("text", Json("line\n\"quoted\"\ttab"))
               .set("arr", Json::array().push(Json(1)).push(
                               Json::object().set("k", Json(2.5))));
  std::string err;
  const Json back = Json::parse(j.dump(2), &err);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_TRUE(back == j);
  // compact form round-trips too
  const Json back2 = Json::parse(j.dump(-1), &err);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_TRUE(back2 == j);
}

TEST(ObsJsonTest, ParseRejectsMalformedInput) {
  std::string err;
  Json::parse("{\"a\": }", &err);
  EXPECT_FALSE(err.empty());
  Json::parse("[1, 2", &err);
  EXPECT_FALSE(err.empty());
  Json::parse("{} trailing", &err);
  EXPECT_FALSE(err.empty());
}

TEST(ObsReportTest, RunReportJsonHasSharedSchema) {
  RunReport r;
  r.name = "test";
  r.steps = 3;
  r.cells_per_step = 100;
  r.cell_updates = 300;
  r.kernel_timers["phi_full"] = {0.25, 3};
  r.kernel_seconds_total = 0.25;
  const Json j = r.to_json();
  ASSERT_NE(j.find("schema"), nullptr);
  EXPECT_EQ(j.find("schema")->str(), kReportSchema);
  EXPECT_EQ(j.find("kind")->str(), "run");
  ASSERT_NE(j.find("timers"), nullptr);
  ASSERT_NE(j.find("timers")->find("kernel/phi_full"), nullptr);
  ASSERT_NE(j.find("counters"), nullptr);
  EXPECT_EQ(j.find("counters")->find("cell_updates")->number(), 300.0);
  ASSERT_NE(j.find("derived"), nullptr);
  EXPECT_NEAR(j.find("derived")->find("mlups")->number(), 300.0 / 0.25 / 1e6,
              1e-12);
}

app::SimulationOptions interp_opts(bool split) {
  app::SimulationOptions o;
  o.with_cells(24, 24);
  o.compile.backend = app::Backend::Interpreter;
  o.compile.split_phi = split;
  o.compile.split_mu = split;
  return o;
}

void init_disk(app::Simulation& sim) {
  sim.init_phi([](long long x, long long y, long long, int c) {
    const double d =
        std::sqrt(double((x - 12) * (x - 12) + (y - 12) * (y - 12))) - 6.0;
    const double s = app::interface_profile(d, 4.0);
    return c == 1 ? s : 1.0 - s;
  });
  sim.init_mu([](long long, long long, long long, int) { return 0.0; });
}

TEST(ObsReportTest, RunReportKernelNamesMatchCompiledKernelIrNames) {
  app::GrandChemModel model(app::make_two_phase(2));
  for (const bool split : {false, true}) {
    app::Simulation sim(model, interp_opts(split));
    init_disk(sim);
    const RunReport rep = sim.run(2);

    std::vector<std::string> ir_names;
    for (const auto& ck : sim.compiled().phi_kernels) {
      ir_names.push_back(ck.ir.name);
    }
    for (const auto& ck : sim.compiled().mu_kernels) {
      ir_names.push_back(ck.ir.name);
    }
    ASSERT_EQ(rep.kernel_timers.size(), ir_names.size())
        << "split=" << split;
    for (const auto& name : ir_names) {
      EXPECT_TRUE(rep.kernel_timers.count(name))
          << "missing kernel timer '" << name << "' (split=" << split << ")";
      EXPECT_EQ(rep.kernel_timers.at(name).count, 2u) << name;
    }
    // and the compile report advertises the same names
    const auto& cr_names = sim.compiled().compile_report().kernel_names;
    ASSERT_EQ(cr_names.size(), ir_names.size());
    for (std::size_t i = 0; i < ir_names.size(); ++i) {
      EXPECT_EQ(cr_names[i], ir_names[i]);
    }
  }
}

TEST(ObsReportTest, HeunSubstepsCountAsOneLatticeUpdate) {
  app::GrandChemModel model(app::make_two_phase(2));
  app::SimulationOptions o = interp_opts(false);
  o.time_scheme = app::TimeScheme::Heun;
  app::Simulation sim(model, o);
  init_disk(sim);
  const RunReport rep = sim.run(3);
  EXPECT_EQ(rep.cell_updates, 3u * 24u * 24u)
      << "Heun's two substeps must count as one update";
  // ...while every kernel really ran twice per step
  for (const auto& [name, t] : rep.kernel_timers) {
    EXPECT_EQ(t.count, 6u) << name;
  }
}

TEST(ObsReportTest, RunZeroStepsYieldsZeroedReport) {
  app::GrandChemModel model(app::make_two_phase(2));
  app::Simulation sim(model, interp_opts(false));
  init_disk(sim);
  const RunReport rep = sim.run(0);
  EXPECT_EQ(rep.steps, 0);
  EXPECT_EQ(rep.cell_updates, 0u);
  EXPECT_EQ(rep.mlups(), 0.0);
  EXPECT_EQ(rep.kernel_seconds_total, 0.0);
  EXPECT_EQ(rep.block_imbalance, 0.0);
  EXPECT_TRUE(rep.kernel_timers.empty());
  EXPECT_TRUE(rep.model_accuracy.empty());
  EXPECT_EQ(rep.worst_model_drift(), 0.0);
  EXPECT_EQ(rep.health.checks, 0);
  // the empty report still serializes to the full v2 schema
  const Json j = rep.to_json();
  EXPECT_EQ(j.find("schema")->str(), kReportSchema);
  ASSERT_NE(j.find("health"), nullptr);
  EXPECT_EQ(j.find("health")->find("checks")->number(), 0.0);
}

TEST(ObsReportTest, ModelAccuracyCoversEveryGeneratedKernel) {
  app::GrandChemModel model(app::make_two_phase(2));
  for (const bool split : {false, true}) {
    app::Simulation sim(model, interp_opts(split));
    init_disk(sim);
    const RunReport rep = sim.run(2);
    for (const auto& [name, t] : rep.kernel_timers) {
      const auto it = rep.model_accuracy.find("kernel/" + name);
      ASSERT_NE(it, rep.model_accuracy.end())
          << "no model_accuracy entry for kernel " << name;
      EXPECT_TRUE(std::isfinite(it->second.ratio)) << name;
      EXPECT_GE(it->second.ratio, 0.0) << name;
      EXPECT_GE(it->second.predicted_seconds, 0.0) << name;
      EXPECT_DOUBLE_EQ(it->second.measured_seconds, t.seconds) << name;
    }
    EXPECT_TRUE(std::isfinite(rep.worst_model_drift()));
    // the section survives the JSON round trip
    const Json j = rep.to_json();
    ASSERT_NE(j.find("model_accuracy"), nullptr);
    EXPECT_EQ(j.find("model_accuracy")->items().size(),
              rep.model_accuracy.size());
    ASSERT_NE(j.find("derived")->find("worst_model_drift"), nullptr);
  }
}

TEST(ObsReportTest, CumulativeAcrossBursts) {
  app::GrandChemModel model(app::make_two_phase(2));
  app::Simulation sim(model, interp_opts(false));
  init_disk(sim);
  const RunReport r1 = sim.run(2);
  const RunReport r2 = sim.run(3);
  EXPECT_EQ(r1.steps, 2);
  EXPECT_EQ(r2.steps, 5);
  EXPECT_GE(r2.kernel_seconds_total, r1.kernel_seconds_total);
  EXPECT_EQ(r2.cell_updates, 5u * 24u * 24u);
}

}  // namespace
}  // namespace pfc::obs
