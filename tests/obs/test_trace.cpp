// Trace timeline recorder: sampling grid, ring-buffer retention, the
// chrome://tracing JSON contract, per-thread buffers, and the traced
// Simulation integration (kernel + boundary spans end to end).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "pfc/app/params.hpp"
#include "pfc/app/simulation.hpp"
#include "pfc/obs/trace.hpp"
#include "pfc/support/thread_pool.hpp"

namespace pfc::obs {
namespace {

TEST(TraceRecorderTest, DefaultRecorderIsInert) {
  TraceRecorder rec;
  EXPECT_FALSE(rec.enabled());
  EXPECT_FALSE(rec.sampled(0));
  rec.complete("k", "kernel", 0.0, 1.0);
  rec.instant("i", "compile");
  EXPECT_EQ(rec.events_recorded(), 0u);
  // null-safe RAII span compiles the record out entirely
  { TraceSpan span(nullptr, "noop", "kernel"); }
  { TraceSpan span(&rec, "noop", "kernel"); }
  EXPECT_EQ(rec.events_recorded(), 0u);
}

TEST(TraceRecorderTest, SampledFollowsSamplingGrid) {
  TraceRecorder rec;
  rec.configure(TraceOptions{}.enable().every(3));
  EXPECT_TRUE(rec.sampled(0));
  EXPECT_FALSE(rec.sampled(1));
  EXPECT_FALSE(rec.sampled(2));
  EXPECT_TRUE(rec.sampled(3));
  rec.configure(TraceOptions{}.enable());
  EXPECT_TRUE(rec.sampled(1));
  EXPECT_THROW(rec.configure(TraceOptions{}.enable().every(0)), Error);
}

TEST(TraceRecorderTest, ChromeJsonCarriesSpanAndInstantFields) {
  TraceRecorder rec;
  rec.configure(TraceOptions{}.enable(), /*pid=*/7);
  rec.complete("phi-full", "kernel", 10.0, 5.0, /*step=*/2, /*block=*/1);
  rec.instant(rec.intern(std::string("compile/jit")), "compile", -1, 0.25);
  const Json j = rec.to_chrome_json();

  const Json* events = j.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->elements().size(), 2u);

  const Json& span = events->elements()[0];
  EXPECT_EQ(span.find("name")->str(), "phi-full");
  EXPECT_EQ(span.find("cat")->str(), "kernel");
  EXPECT_EQ(span.find("ph")->str(), "X");
  EXPECT_DOUBLE_EQ(span.find("ts")->number(), 10.0);
  EXPECT_DOUBLE_EQ(span.find("dur")->number(), 5.0);
  EXPECT_EQ(span.find("pid")->number(), 7.0);
  ASSERT_NE(span.find("args"), nullptr);
  EXPECT_EQ(span.find("args")->find("step")->number(), 2.0);
  EXPECT_EQ(span.find("args")->find("block")->number(), 1.0);

  const Json& inst = events->elements()[1];
  EXPECT_EQ(inst.find("name")->str(), "compile/jit");
  EXPECT_EQ(inst.find("ph")->str(), "i");
  EXPECT_EQ(inst.find("s")->str(), "t");
  EXPECT_DOUBLE_EQ(inst.find("args")->find("seconds")->number(), 0.25);

  ASSERT_NE(j.find("otherData"), nullptr);
  EXPECT_EQ(j.find("otherData")->find("rank")->number(), 7.0);
}

TEST(TraceRecorderTest, RingBufferKeepsNewestEvents) {
  TraceRecorder rec;
  rec.configure(TraceOptions{}.enable().with_max_events(4));
  for (int i = 0; i < 10; ++i) {
    rec.complete("k", "kernel", double(i), 1.0);
  }
  EXPECT_EQ(rec.events_recorded(), 10u);
  EXPECT_EQ(rec.events_dropped(), 6u);
  const Json j = rec.to_chrome_json();
  const auto& events = j.find("traceEvents")->elements();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_DOUBLE_EQ(events.front().find("ts")->number(), 6.0);
  EXPECT_DOUBLE_EQ(events.back().find("ts")->number(), 9.0);
  EXPECT_EQ(j.find("otherData")->find("dropped_events")->number(), 6.0);
}

TEST(TraceRecorderTest, InternReturnsStablePointers) {
  TraceRecorder rec;
  const char* a1 = rec.intern(std::string("alpha"));
  const char* a2 = rec.intern(std::string("alpha"));
  const char* b = rec.intern(std::string("beta"));
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_STREQ(b, "beta");
}

TEST(TraceRecorderTest, PoolThreadsRecordIntoDistinctTids) {
  TraceRecorder rec;
  rec.configure(TraceOptions{}.enable());
  ThreadPool pool(4);
  pool.run_on_all([&](int) { rec.complete("slabwork", "slab", 0.0, 1.0); });
  const Json j = rec.to_chrome_json();
  const auto& events = j.find("traceEvents")->elements();
  ASSERT_EQ(events.size(), 4u);
  std::set<double> tids;
  for (const Json& e : events) tids.insert(e.find("tid")->number());
  EXPECT_EQ(tids.size(), 4u) << "each worker thread must own a tid";
}

TEST(TraceRecorderTest, RankTracePathInsertsRankBeforeExtension) {
  EXPECT_EQ(rank_trace_path("trace.json", 2), "trace.rank2.json");
  EXPECT_EQ(rank_trace_path("out/t.json", 0), "out/t.rank0.json");
  EXPECT_EQ(rank_trace_path("noext", 3), "noext.rank3");
  EXPECT_EQ(rank_trace_path("dir.d/trace", 1), "dir.d/trace.rank1");
}

TEST(TraceSimulationTest, TracedRunRecordsKernelAndBoundarySpans) {
  const std::string path =
      ::testing::TempDir() + "pfc_test_trace_sim.json";
  app::GrandChemModel model(app::make_two_phase(2));
  app::SimulationOptions o;
  o.with_cells(16, 16);
  o.compile.backend = app::Backend::Interpreter;
  o.with_trace(TraceOptions{}.enable().with_path(path));
  app::Simulation sim(model, o);
  sim.init_phi([](long long, long long, long long, int c) {
    return c == 0 ? 1.0 : 0.0;
  });
  sim.init_mu([](long long, long long, long long, int) { return 0.0; });
  sim.run(2);

  std::size_t kernel_spans = 0, ghost_spans = 0, step_spans = 0,
              compile_instants = 0;
  const Json j = sim.tracer().to_chrome_json();
  for (const Json& e : j.find("traceEvents")->elements()) {
    const std::string& cat = e.find("cat")->str();
    if (cat == "kernel") ++kernel_spans;
    if (cat == "ghost") ++ghost_spans;
    if (cat == "step") ++step_spans;
    if (cat == "compile") ++compile_instants;
  }
  const std::size_t kernels = sim.compiled().phi_kernels.size() +
                              sim.compiled().mu_kernels.size();
  EXPECT_EQ(kernel_spans, 2 * kernels);
  EXPECT_EQ(ghost_spans, 4u) << "two boundary fills per step";
  EXPECT_EQ(step_spans, 2u);
  EXPECT_GT(compile_instants, 0u) << "compile stages become instants";

  // run() wrote the file; it must be a parseable chrome://tracing document
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::stringstream ss;
  ss << in.rdbuf();
  std::string err;
  const Json parsed = Json::parse(ss.str(), &err);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_NE(parsed.find("traceEvents"), nullptr);
  std::remove(path.c_str());
}

TEST(TraceSimulationTest, SamplingSkipsOffGridSteps) {
  app::GrandChemModel model(app::make_two_phase(2));
  app::SimulationOptions o;
  o.with_cells(16, 16);
  o.compile.backend = app::Backend::Interpreter;
  const std::string path =
      ::testing::TempDir() + "pfc_test_trace_sampled.json";
  o.with_trace(TraceOptions{}.enable().every(2).with_path(path));
  app::Simulation sim(model, o);
  sim.init_phi([](long long, long long, long long, int c) {
    return c == 0 ? 1.0 : 0.0;
  });
  sim.init_mu([](long long, long long, long long, int) { return 0.0; });
  sim.run(4);  // steps 0..3; only 0 and 2 are on the grid

  std::size_t step_spans = 0;
  const Json j = sim.tracer().to_chrome_json();
  for (const Json& e : j.find("traceEvents")->elements()) {
    if (e.find("cat")->str() == "step") ++step_spans;
  }
  EXPECT_EQ(step_spans, 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pfc::obs
