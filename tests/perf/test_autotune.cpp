// Autotuner tests (DESIGN.md §13): candidate codec strictness, deterministic
// enumeration, the baseline-keeps-ties search contract, tuning-cache key
// stability, store/load round-trip, and the corruption/staleness fallback —
// plus the app-level glue (candidate <-> SimulationOptions mapping, the
// knob-independent model hash) and the ctest-chained cache-hit pair
// (PFC_TEST_TUNE_DIR): a warm search populates the cache, the second tune of
// the same preset performs zero measured runs.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "pfc/app/params.hpp"
#include "pfc/app/simulation.hpp"
#include "pfc/app/tuning.hpp"
#include "pfc/obs/json.hpp"
#include "pfc/perf/autotune.hpp"
#include "pfc/support/assert.hpp"
#include "pfc/support/topology.hpp"

namespace pfc::perf {
namespace {

namespace fs = std::filesystem;

/// Fresh directory under /tmp, removed on destruction.
struct TempDir {
  TempDir() {
    std::string tmpl = (fs::temp_directory_path() / "pfc_tune_XXXXXX").string();
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    const char* made = ::mkdtemp(buf.data());
    PFC_REQUIRE(made != nullptr, "mkdtemp failed in test");
    path = made;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

bool is_lower_hex(const std::string& s) {
  for (char c : s) {
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  }
  return true;
}

TuneCandidate rich_candidate() {
  TuneCandidate c;
  c.split = true;
  c.vector_width = 4;
  c.streaming_stores = true;
  c.dispatch = "dynamic";
  c.blocking = "fixed";
  c.blocking_tile_rows = 16;
  c.pin = "compact";
  return c;
}

TEST(TuneCandidateCodec, RoundTripsAndRejectsMalformedInput) {
  const TuneCandidate c = rich_candidate();
  const TuneCandidate d = TuneCandidate::from_json(c.to_json(), "test");
  EXPECT_TRUE(c == d);
  EXPECT_EQ(c.label(), d.label());

  obs::Json unknown = c.to_json();
  unknown.set("bogus", obs::Json(1.0));
  EXPECT_THROW(TuneCandidate::from_json(unknown, "test"), Error);

  obs::Json bad_width = c.to_json();
  bad_width.set("vector_width", obs::Json(3.0));
  EXPECT_THROW(TuneCandidate::from_json(bad_width, "test"), Error);

  obs::Json bad_dispatch = c.to_json();
  bad_dispatch.set("dispatch", obs::Json(std::string("sideways")));
  EXPECT_THROW(TuneCandidate::from_json(bad_dispatch, "test"), Error);
}

TEST(TuneSearch, EnumerationIsDeterministicAndPrunesSingleThreadKnobs) {
  TuneOptions o;
  o.max_vector_width = 8;
  o.multi_threaded = false;
  const std::vector<TuneCandidate> a = enumerate_candidates(o);
  const std::vector<TuneCandidate> b = enumerate_candidates(o);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label(), b[i].label()) << "index " << i;
  }
  for (const TuneCandidate& c : a) {
    // Driver placement cannot matter without a pool — collapsed.
    EXPECT_EQ(c.dispatch, "static");
    EXPECT_EQ(c.pin, "none");
    EXPECT_TRUE(c.vector_width == 1 || c.vector_width == 2 ||
                c.vector_width == 4 || c.vector_width == 8);
    if (c.vector_width == 1) {
      EXPECT_FALSE(c.streaming_stores);
    }
    if (c.blocking == "fixed") {
      EXPECT_GT(c.blocking_tile_rows, 0);
    } else {
      EXPECT_EQ(c.blocking_tile_rows, 0);
    }
  }
  // The multi-threaded space is a strict superset: dispatch and pin open up.
  TuneOptions mt = o;
  mt.multi_threaded = true;
  const std::vector<TuneCandidate> m = enumerate_candidates(mt);
  EXPECT_GT(m.size(), a.size());
  bool saw_dynamic = false;
  for (const TuneCandidate& c : m) saw_dynamic |= c.dispatch == "dynamic";
  EXPECT_TRUE(saw_dynamic);
}

TEST(TuneSearch, BaselineIsMeasuredFirstAndKeepsExactTies) {
  TuneOptions o;
  o.budget = 5;
  o.max_vector_width = 4;
  o.multi_threaded = false;
  int calls = 0;
  const TuneResult r = tune(
      o, [](const TuneCandidate&) { return 1.0; },
      [&](const TuneCandidate&) {
        ++calls;
        return 2.5;
      });
  EXPECT_EQ(calls, 5);
  EXPECT_EQ(r.measured_runs, 5);
  ASSERT_FALSE(r.ranking.empty());
  // Position 0 is always the caller's own configuration...
  EXPECT_TRUE(r.ranking[0].config == o.baseline);
  EXPECT_TRUE(r.ranking[0].measured);
  // ...and an exact tie resolves toward it: tuned is never slower than the
  // default by construction.
  EXPECT_TRUE(r.best == o.baseline);
  EXPECT_EQ(r.best_mlups, 2.5);
  EXPECT_EQ(r.baseline_mlups, 2.5);
}

TEST(TuneSearch, StrictlyFasterCandidateReplacesBaseline) {
  TuneOptions o;
  o.budget = 10;
  o.max_vector_width = 2;
  o.multi_threaded = false;
  const TuneResult r = tune(
      o, [](const TuneCandidate&) { return 0.0; },
      [](const TuneCandidate& c) { return c.vector_width > 1 ? 4.0 : 1.0; });
  EXPECT_GT(r.best.vector_width, 1);
  EXPECT_EQ(r.best_mlups, 4.0);
  EXPECT_EQ(r.baseline_mlups, 1.0);
  EXPECT_GE(r.best_mlups, r.baseline_mlups);
  EXPECT_EQ(r.measured_runs, 10);
  EXPECT_GT(r.candidates, r.measured_runs);  // budget truncated the space
}

TEST(TuneSearch, PriorOrdersMeasurementsAfterTheBaseline) {
  TuneOptions o;
  o.budget = 3;
  o.max_vector_width = 2;
  o.multi_threaded = false;
  std::vector<int> measured_widths;
  tune(
      o, [](const TuneCandidate& c) { return double(c.vector_width); },
      [&](const TuneCandidate& c) {
        measured_widths.push_back(c.vector_width);
        return 1.0;
      });
  ASSERT_EQ(measured_widths.size(), 3u);
  EXPECT_EQ(measured_widths[0], 1);  // the baseline itself
  // Highest-prior candidates (width 2) fill the remaining budget.
  EXPECT_EQ(measured_widths[1], 2);
  EXPECT_EQ(measured_widths[2], 2);
}

TEST(TuneCache, KeyIsStableAndContentAddressed) {
  const std::string a = tune_cache_key("model-a", "machine-a");
  EXPECT_EQ(a, tune_cache_key("model-a", "machine-a"));
  EXPECT_EQ(a.size(), 64u);
  EXPECT_TRUE(is_lower_hex(a));
  EXPECT_NE(a, tune_cache_key("model-b", "machine-a"));
  EXPECT_NE(a, tune_cache_key("model-a", "machine-b"));
  EXPECT_EQ(tune_cache_path("/some/dir", a), "/some/dir/tune-" + a + ".json");

  const support::Topology topo = support::Topology::detect();
  const MachineModel m;
  EXPECT_EQ(machine_signature(topo, m), machine_signature(topo, m));
  EXPECT_NE(machine_signature(topo, m).find("cores="), std::string::npos);
}

TEST(TuneCache, StoreThenLoadRoundTrips) {
  TempDir dir;
  const std::string key = tune_cache_key("model", "machine");
  TuneCacheEntry e;
  e.best = rich_candidate();
  e.best_mlups = 123.5;
  e.baseline_mlups = 88.25;
  e.measured_runs = 8;
  e.search_seconds = 1.5;
  store_tuned(dir.path, key, e);

  const auto back = load_tuned(dir.path, key);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->best == e.best);
  EXPECT_EQ(back->best_mlups, e.best_mlups);
  EXPECT_EQ(back->baseline_mlups, e.baseline_mlups);
  EXPECT_EQ(back->measured_runs, e.measured_runs);
  EXPECT_EQ(back->search_seconds, e.search_seconds);
}

TEST(TuneCache, CorruptStaleOrMismatchedEntriesMissToFullSearch) {
  TempDir dir;
  const std::string key = tune_cache_key("model", "machine");
  // Missing file: plain miss.
  EXPECT_FALSE(load_tuned(dir.path, key).has_value());

  // Truncated garbage: parse failure is a miss, not an error.
  {
    std::ofstream out(tune_cache_path(dir.path, key));
    out << "{ \"schema\": \"pfc-tu";
  }
  EXPECT_FALSE(load_tuned(dir.path, key).has_value());

  // A well-formed entry under the wrong key (machine changed, file copied
  // over): the embedded key mismatch makes it stale.
  TuneCacheEntry e;
  e.best = rich_candidate();
  e.best_mlups = 10.0;
  store_tuned(dir.path, key, e);
  const std::string other = tune_cache_key("model", "other-machine");
  fs::copy_file(tune_cache_path(dir.path, key),
                tune_cache_path(dir.path, other),
                fs::copy_options::overwrite_existing);
  EXPECT_FALSE(load_tuned(dir.path, other).has_value());
  ASSERT_TRUE(load_tuned(dir.path, key).has_value());  // original still fine

  // A schema from the future (or a foreign tool) is stale too.
  {
    std::string text;
    {
      std::ifstream in(tune_cache_path(dir.path, key));
      text.assign(std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>());
    }
    std::string::size_type at = text.find("pfc-tune-v1");
    ASSERT_NE(at, std::string::npos);
    text.replace(at, std::string("pfc-tune-v1").size(), "pfc-tune-v9");
    std::ofstream out(tune_cache_path(dir.path, key));
    out << text;
  }
  EXPECT_FALSE(load_tuned(dir.path, key).has_value());
}

TEST(AppTuning, CandidateAndOptionsRoundTrip) {
  const TuneCandidate c = rich_candidate();
  app::SimulationOptions opts;
  app::apply_tune_candidate(c, opts);
  EXPECT_TRUE(app::candidate_from_options(opts) == c);
  EXPECT_TRUE(opts.compile.split_phi);
  EXPECT_EQ(opts.compile.vector_width, 4);
  EXPECT_EQ(opts.blocking_tile_rows, 16);
}

TEST(AppTuning, ModelHashExcludesTunedKnobsButSeesTheProblem) {
  app::GrandChemParams params = app::make_p1(2);
  app::GrandChemModel model(params);
  app::SimulationOptions a;
  a.cells = {24, 24, 1};
  const std::string ha = app::tuning_model_hash(model, a);
  EXPECT_EQ(ha.size(), 64u);
  EXPECT_TRUE(is_lower_hex(ha));

  // Every knob the tuner searches maps to the same key...
  app::SimulationOptions b = a;
  app::apply_tune_candidate(rich_candidate(), b);
  EXPECT_EQ(ha, app::tuning_model_hash(model, b));

  // ...while a different problem (domain extents) re-keys.
  app::SimulationOptions c = a;
  c.cells = {48, 24, 1};
  EXPECT_NE(ha, app::tuning_model_hash(model, c));
}

TEST(AppTuning, TuneModeOffIsANoOp) {
  app::GrandChemParams params = app::make_p1(2);
  app::GrandChemModel model(params);
  app::SimulationOptions opts;
  opts.cells = {16, 16, 1};
  opts.compile.tune = app::TuneMode::Off;
  const obs::TuningStats stats = app::autotune_apply(model, opts);
  EXPECT_FALSE(stats.enabled);
  EXPECT_EQ(stats.measured_runs, 0);
}

/// ctest-chained pair (see tests/CMakeLists.txt): the fixture setup runs a
/// full measured search into PFC_TEST_TUNE_DIR; the dependent test re-tunes
/// the identical preset in "cached" mode and must perform zero measured
/// runs. Skipped when run outside the fixture (no env var).
app::SimulationOptions chain_preset(const char* dir) {
  app::SimulationOptions o;
  o.cells = {24, 24, 1};
  o.compile.cache_dir = dir;
  return o;
}

TEST(TuneCacheChain, WarmSearchPopulatesCache) {
  const char* dir = std::getenv("PFC_TEST_TUNE_DIR");
  if (dir == nullptr || *dir == '\0') {
    GTEST_SKIP() << "PFC_TEST_TUNE_DIR not set (ctest fixture only)";
  }
  app::GrandChemParams params = app::make_p1(2);
  app::GrandChemModel model(params);
  app::SimulationOptions opts = chain_preset(dir);
  opts.compile.tune = app::TuneMode::Full;
  const obs::TuningStats stats = app::autotune_apply(model, opts);
  EXPECT_TRUE(stats.enabled);
  EXPECT_EQ(stats.mode, "full");
  EXPECT_FALSE(stats.cache_hit);
  EXPECT_GE(stats.measured_runs, 1);
  EXPECT_GE(stats.best_mlups, stats.baseline_mlups);
  // The winner persisted beside the kernel cache.
  const std::string path = perf::tune_cache_path(dir, stats.cache_key);
  EXPECT_TRUE(fs::exists(path)) << path;
}

TEST(TuneCacheChain, SecondTuneZeroMeasuredRuns) {
  const char* dir = std::getenv("PFC_TEST_TUNE_DIR");
  if (dir == nullptr || *dir == '\0') {
    GTEST_SKIP() << "PFC_TEST_TUNE_DIR not set (ctest fixture only)";
  }
  app::GrandChemParams params = app::make_p1(2);
  app::GrandChemModel model(params);
  app::SimulationOptions opts = chain_preset(dir);
  opts.compile.tune = app::TuneMode::Cached;
  const obs::TuningStats stats = app::autotune_apply(model, opts);
  EXPECT_TRUE(stats.enabled);
  EXPECT_EQ(stats.mode, "cached");
  EXPECT_TRUE(stats.cache_hit);
  EXPECT_EQ(stats.measured_runs, 0);
  EXPECT_FALSE(stats.best_config.empty());
  EXPECT_GE(stats.best_mlups, stats.baseline_mlups);
}

}  // namespace
}  // namespace pfc::perf
