// Evolutionary transformation tuning (paper §3.5).
#include <gtest/gtest.h>

#include "pfc/app/compiler.hpp"
#include "pfc/app/params.hpp"
#include "pfc/perf/evotune.hpp"

namespace pfc::perf {
namespace {

ir::Kernel mu_kernel() {
  app::GrandChemModel m(app::make_p1(3));
  fd::DiscretizeOptions d;
  d.dims = 3;
  std::optional<FieldPtr> flux;
  return app::ModelCompiler::lower(m.mu_update(), d, app::CompileOptions{},
                                   &flux)[0];
}

TEST(EvoTuneTest, ImprovesOverIdentity) {
  const ir::Kernel k = mu_kernel();
  const GpuModel gpu = GpuModel::p100();
  TuneOptions o;
  o.population = 8;
  o.generations = 4;
  o.seed = 7;
  const TuneResult r = evolve_transform_sequence(k, gpu, o);

  const auto identity = evaluate_genome(k, TuneGenome{}, gpu, o.cells);
  EXPECT_LT(r.best_stats.runtime_ms, identity.runtime_ms)
      << "evolution must beat the untransformed kernel";
  EXPECT_FALSE(r.best_stats.spills);
  EXPECT_EQ(r.evaluations,
            o.population + o.generations * (o.population - o.elite));
}

TEST(EvoTuneTest, FitnessMonotoneNonIncreasing) {
  const ir::Kernel k = mu_kernel();
  const TuneResult r =
      evolve_transform_sequence(k, GpuModel::p100(), {.population = 6,
                                                      .generations = 5,
                                                      .elite = 2,
                                                      .seed = 3});
  for (std::size_t i = 1; i < r.history_ms.size(); ++i) {
    EXPECT_LE(r.history_ms[i], r.history_ms[i - 1] + 1e-12)
        << "elitism guarantees monotone best fitness";
  }
}

TEST(EvoTuneTest, DeterministicForFixedSeed) {
  const ir::Kernel k = mu_kernel();
  const GpuModel gpu = GpuModel::p100();
  TuneOptions o;
  o.population = 6;
  o.generations = 3;
  o.seed = 11;
  const TuneResult a = evolve_transform_sequence(k, gpu, o);
  const TuneResult b = evolve_transform_sequence(k, gpu, o);
  EXPECT_EQ(a.best_stats.runtime_ms, b.best_stats.runtime_ms);
  EXPECT_EQ(a.best.schedule, b.best.schedule);
  EXPECT_EQ(a.best.beam_width, b.best.beam_width);
}

TEST(EvoTuneTest, RejectsBadParameters) {
  const ir::Kernel k = mu_kernel();
  TuneOptions o;
  o.population = 2;
  o.elite = 2;
  EXPECT_THROW(evolve_transform_sequence(k, GpuModel::p100(), o), Error);
}

TEST(EvoTuneTest, DiscoveredSequenceAtLeastAsGoodAsHandPicked) {
  // the paper's motivation: evolution "potentially discovers sequences that
  // would have been elusive to reasoning" — at minimum it must match the
  // hand-picked sched+dupl+fence sequence
  const ir::Kernel k = mu_kernel();
  const GpuModel gpu = GpuModel::p100();
  TuneOptions o;
  o.population = 10;
  o.generations = 6;
  o.seed = 5;
  const TuneResult r = evolve_transform_sequence(k, gpu, o);
  TuneGenome hand;
  hand.schedule = hand.remat = hand.fences = true;
  const auto h = evaluate_genome(k, hand, gpu, o.cells);
  EXPECT_LE(r.best_stats.runtime_ms, h.runtime_ms * 1.001);
}

}  // namespace
}  // namespace pfc::perf
