// Performance-model tests: cache simulator invariants, layer conditions vs
// simulation, ECM structure, GPU register model, network model shapes.
#include <gtest/gtest.h>

#include <cmath>

#include "pfc/app/compiler.hpp"
#include "pfc/app/params.hpp"
#include "pfc/fd/discretize.hpp"
#include "pfc/perf/cachesim.hpp"
#include "pfc/perf/ecm.hpp"
#include "pfc/perf/gpu_model.hpp"
#include "pfc/perf/netmodel.hpp"

namespace pfc::perf {
namespace {

using sym::Expr;
using sym::num;

ir::Kernel diffusion_kernel_3d() {
  auto src = Field::create("pd_src", 3, 1);
  auto dst = Field::create("pd_dst", 3, 1);
  fd::PdeUpdate pde;
  pde.name = "pd";
  pde.src = src;
  pde.dst = dst;
  Expr lap = num(0);
  for (int d = 0; d < 3; ++d) {
    lap = lap + sym::diff_op(sym::diff_op(sym::at(src), d), d);
  }
  pde.rhs = {0.1 * lap};
  fd::DiscretizeOptions o;
  o.dims = 3;
  return ir::build_kernel(fd::discretize(pde, o).kernels[0]);
}

std::vector<ir::Kernel> p1_kernels(bool split_mu) {
  app::GrandChemModel m(app::make_p1(3));
  app::CompileOptions co;
  co.split_mu = split_mu;
  fd::DiscretizeOptions dopts;
  dopts.dims = 3;
  dopts.split_staggered = split_mu;
  std::optional<FieldPtr> flux;
  return app::ModelCompiler::lower(m.mu_update(), dopts, co, &flux);
}

TEST(CacheSimTest, ColdMissesThenHits) {
  CacheSim sim({{1024, 2, 64}});
  sim.access(0);
  sim.access(8);   // same line
  sim.access(64);  // next line
  EXPECT_EQ(sim.hits()[0], 1);
  EXPECT_EQ(sim.memory_accesses(), 2);
}

TEST(CacheSimTest, LruEviction) {
  // 2-way, 2 sets of 64B lines -> lines 0 and 2 map to set 0
  CacheSim sim({{256, 2, 64}});
  sim.access(0);        // line 0 -> set 0
  sim.access(128);      // line 2 -> set 0
  sim.access(256);      // line 4 -> set 0, evicts line 0 (LRU)
  sim.access(0);        // miss again
  EXPECT_EQ(sim.hits()[0], 0);
  EXPECT_EQ(sim.memory_accesses(), 4);
  sim.access(0);  // now hits
  EXPECT_EQ(sim.hits()[0], 1);
}

TEST(CacheSimTest, SecondLevelCatchesL1Evictions) {
  CacheSim sim({{128, 2, 64}, {4096, 8, 64}});
  // touch 4 distinct lines (L1 holds 2), then re-touch: L2 must hit
  for (int r = 0; r < 2; ++r) {
    for (std::uint64_t a = 0; a < 4; ++a) sim.access(a * 64);
  }
  EXPECT_EQ(sim.memory_accesses(), 4);  // only compulsory
  EXPECT_GT(sim.hits()[1], 0);
}

TEST(StreamAnalysisTest, DiffusionStencil) {
  const auto k = diffusion_kernel_3d();
  const StreamInfo s = analyze_streams(k);
  // 7-point stencil: (y,z) offsets {0,0},{±1,0},{0,±1} -> 5 streams
  EXPECT_EQ(s.total_read_streams, 5);
  EXPECT_EQ(s.per_layer_streams, 3);  // z in {-1, 0, 1}
  EXPECT_EQ(s.compulsory_streams, 1);
  EXPECT_EQ(s.store_streams, 1);
}

TEST(LayerConditionTest, TrafficDropsWithLcSatisfied) {
  const auto k = diffusion_kernel_3d();
  const MachineModel m = MachineModel::skylake_sp();
  // small block: 3D LC holds everywhere -> compulsory traffic only
  auto small = layer_condition_traffic(k, {16, 16, 16}, m);
  // huge block: 3D LC fails in L1/L2
  auto large = layer_condition_traffic(k, {400, 400, 400}, m);
  ASSERT_EQ(small.bytes_per_update.size(), large.bytes_per_update.size());
  EXPECT_LT(small.bytes_per_update[1], large.bytes_per_update[1]);
  EXPECT_GT(small.max_block_for_3d_lc, 16);
}

TEST(LayerConditionTest, BlockSizingMatchesPaperMethod) {
  // paper: mu-full needs 232 N^2 bytes; 1 MB L2 -> N < 67. Our P1 mu-full
  // has a similar structure: the derived block bound must land in the same
  // few-dozen-cells regime.
  auto kernels = p1_kernels(false);
  const MachineModel m = MachineModel::skylake_sp();
  auto tp = layer_condition_traffic(kernels[0], {60, 60, 60}, m);
  EXPECT_GT(tp.max_block_for_3d_lc, 20);
  EXPECT_LT(tp.max_block_for_3d_lc, 200);
}

TEST(LayerConditionTest, AgreesWithCacheSimulatorOnMemoryTraffic) {
  const auto k = diffusion_kernel_3d();
  MachineModel m = MachineModel::skylake_sp();
  const std::array<long long, 3> block{48, 48, 8};
  const auto lc = layer_condition_traffic(k, block, m).bytes_per_update;
  const auto sim = simulate_kernel_traffic(k, block, m);
  ASSERT_EQ(lc.size(), sim.size());
  // memory-boundary traffic must agree within a factor ~2 (the sim sees
  // real conflict misses, the LC is an idealized bound)
  EXPECT_GT(sim.back(), 0.3 * lc.back());
  EXPECT_LT(sim.back(), 3.0 * lc.back());
}

TEST(EcmTest, SplitVsFullScalingShapes) {
  // the paper's Fig 2 (left): mu-split saturates memory bandwidth (per-core
  // performance decays), mu-full is compute bound (flat per-core scaling)
  const MachineModel m = MachineModel::skylake_sp();
  auto full = ecm_predict(p1_kernels(false)[0], {60, 60, 60}, m);
  auto split_kernels = p1_kernels(true);
  // evaluate the consumer kernel of the split pair (the data-bound one)
  auto split = ecm_predict(split_kernels[1], {60, 60, 60}, m);

  EXPECT_GT(full.t_comp, split.t_comp)
      << "full kernel recomputes fluxes -> more in-core work";
  const int sat_full = full.saturation_cores(m);
  const int sat_split = split.saturation_cores(m);
  EXPECT_GT(sat_full, sat_split)
      << "split kernel must saturate bandwidth with fewer cores";
  EXPECT_LE(sat_split, 2 * m.cores);

  // per-core MLUP/s of the full kernel stays ~flat over the socket
  const double f1 = full.mlups(m, 1);
  const double f24 = full.mlups(m, m.cores) / m.cores;
  EXPECT_NEAR(f24 / f1, 1.0, 0.25);
}

TEST(EcmTest, PredictionPositiveAndFinite) {
  const MachineModel m = MachineModel::skylake_sp();
  for (bool split : {false, true}) {
    for (const auto& k : p1_kernels(split)) {
      auto p = ecm_predict(k, {60, 60, 60}, m);
      EXPECT_GT(p.t_comp, 0);
      EXPECT_GT(p.mlups(m, 1), 0);
      EXPECT_GT(p.mlups(m, 24), p.mlups(m, 1));
    }
  }
}

TEST(GpuModelTest, TransformationLadder) {
  // Fig 2 (right): none spills; sched alone eliminates spilling (~+50%);
  // sched+dupl+fence drops below 128 registers and doubles occupancy.
  auto kernels = p1_kernels(false);
  const GpuModel gpu = GpuModel::p100();
  const double cells = 400.0 * 400 * 400;

  const auto none = evaluate_gpu_kernel(kernels[0], {}, gpu, cells);
  GpuTransformConfig sched;
  sched.schedule = true;
  const auto s = evaluate_gpu_kernel(kernels[0], sched, gpu, cells);
  GpuTransformConfig all;
  all.schedule = all.remat = all.fences = true;
  const auto a = evaluate_gpu_kernel(kernels[0], all, gpu, cells);

  EXPECT_TRUE(none.spills) << "untransformed mu-full must spill (regs="
                           << none.nvcc_registers << ")";
  EXPECT_LT(s.nvcc_registers, 256);
  EXPECT_FALSE(s.spills);
  EXPECT_LT(s.runtime_ms, none.runtime_ms);
  EXPECT_LE(a.nvcc_registers, s.nvcc_registers);
  EXPECT_LT(a.runtime_ms, none.runtime_ms);
  EXPECT_GT(a.occupancy, none.occupancy);
}

TEST(GpuModelTest, GreedyVsWideBeam) {
  auto kernels = p1_kernels(false);
  const GpuModel gpu = GpuModel::p100();
  GpuTransformConfig greedy;
  greedy.schedule = true;
  greedy.beam_width = 1;
  GpuTransformConfig wide = greedy;
  wide.beam_width = 20;
  const auto g = evaluate_gpu_kernel(kernels[0], greedy, gpu, 1e6);
  const auto w = evaluate_gpu_kernel(kernels[0], wide, gpu, 1e6);
  EXPECT_LE(w.analysis_live, g.analysis_live);
}

TEST(GpuModelTest, FastMathSpeedsUpDivisionHeavyKernel) {
  // paper §6.2: approximations give 25-35 % on the mu kernels
  auto kernels = p1_kernels(false);
  const GpuModel gpu = GpuModel::p100();
  GpuTransformConfig base;
  base.schedule = true;
  GpuTransformConfig fast = base;
  fast.fast_math = true;
  const auto b = evaluate_gpu_kernel(kernels[0], base, gpu, 1e7);
  const auto f = evaluate_gpu_kernel(kernels[0], fast, gpu, 1e7);
  const double speedup = b.runtime_ms / f.runtime_ms;
  EXPECT_GT(speedup, 1.08);
  EXPECT_LT(speedup, 2.0);
}

TEST(NetModelTest, Table2Ordering) {
  // no-overlap/no-gpudirect < no-overlap/gpudirect < overlap/no-gpudirect
  // < overlap/gpudirect (395 < 403 < 422 < 440 in the paper)
  const NetworkModel net;
  const std::array<long long, 3> block{400, 400, 400};
  const double cells = 400.0 * 400 * 400;
  const double compute_s = cells / (440e6);  // kernel-only rate
  const double bytes = ghost_bytes_per_step(block, 4, 2);
  const int msgs = messages_per_step(3);

  const auto mlups = [&](bool ov, bool gd) {
    return cells / step_time(compute_s, bytes, msgs, {ov, gd}, net) / 1e6;
  };
  const double m00 = mlups(false, false);
  const double m01 = mlups(false, true);
  const double m10 = mlups(true, false);
  const double m11 = mlups(true, true);
  EXPECT_LT(m00, m01);
  EXPECT_LT(m01, m10);
  EXPECT_LT(m10, m11);
  // overall spread in the paper is ~11 % (395 -> 440)
  EXPECT_GT(m11 / m00, 1.03);
  EXPECT_LT(m11 / m00, 1.4);
}

TEST(NetModelTest, WeakScalingNearlyFlat) {
  const NetworkModel net;
  const std::array<long long, 3> block{60, 60, 60};
  const double cells = 60.0 * 60 * 60;
  const double compute_s = cells / 6e6;  // ~6 MLUP/s per core
  const double bytes = ghost_bytes_per_step(block, 4, 2);
  const double r1 = scaled_mlups_per_rank(cells, compute_s, bytes, 12, 16,
                                          {true, false}, net);
  const double r2 = scaled_mlups_per_rank(cells, compute_s, bytes, 12,
                                          300000, {true, false}, net);
  EXPECT_GT(r2 / r1, 0.9) << "weak scaling must stay near-perfect";
}

TEST(NetModelTest, StrongScalingRollsOff) {
  const NetworkModel net;
  // fixed 512x256x256 domain split over ranks
  const double total_cells = 512.0 * 256 * 256;
  const auto per_rank = [&](int ranks) {
    const double c = total_cells / ranks;
    const double edge = std::cbrt(c);
    const std::array<long long, 3> block{(long long)edge, (long long)edge,
                                         (long long)edge};
    const double compute_s = c / 6e6;
    const double bytes = ghost_bytes_per_step(block, 4, 2);
    return scaled_mlups_per_rank(c, compute_s, bytes, 12, ranks,
                                 {true, false}, net);
  };
  const double eff48 = per_rank(48);
  const double eff150k = per_rank(150000);
  EXPECT_LT(eff150k, eff48) << "per-core efficiency must drop when blocks "
                               "shrink to a few cells";
  EXPECT_GT(eff150k, 0.1 * eff48) << "but total throughput still grows";
}

}  // namespace
}  // namespace pfc::perf
