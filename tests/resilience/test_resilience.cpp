// End-to-end tests of pfc::resilience: deterministic checkpoint/restart
// (bitwise, including the Philox fluctuation stream), health-driven
// rollback recovery, the JIT degradation chain and the fault-injection
// machinery that makes all of it testable.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "pfc/app/analysis.hpp"
#include "pfc/app/distributed.hpp"
#include "pfc/app/params.hpp"
#include "pfc/app/simulation.hpp"
#include "pfc/backend/jit.hpp"
#include "pfc/field/array.hpp"
#include "pfc/field/field.hpp"
#include "pfc/resilience/checkpoint.hpp"
#include "pfc/resilience/resilience.hpp"
#include "pfc/support/assert.hpp"

namespace pfc {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test scratch directory, removed on destruction.
struct TempDir {
  explicit TempDir(const std::string& tag) {
    std::string tmpl =
        (fs::temp_directory_path() / ("pfc_" + tag + "_XXXXXX")).string();
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    const char* got = mkdtemp(buf.data());
    if (got != nullptr) path = got;
  }
  ~TempDir() {
    if (!path.empty()) {
      std::error_code ec;
      fs::remove_all(path, ec);
    }
  }
  std::string path;
};

/// Scoped setenv/unsetenv so one test's env never leaks into another.
struct EnvVar {
  EnvVar(const char* name, const char* value) : name_(name) {
    setenv(name, value, 1);
  }
  ~EnvVar() { unsetenv(name_); }
  const char* name_;
};

app::GrandChemModel noisy_model() {
  app::GrandChemParams p = app::make_p2(2);
  p.dt = 0.005;
  // keep the side-branching noise on: the whole point is that the Philox
  // stream survives a restart bitwise
  EXPECT_GT(p.noise_amplitude, 0.0);
  return app::GrandChemModel(p);
}

app::SimulationOptions noisy_opts(int vector_width) {
  app::SimulationOptions o;
  o.cells = {32, 32, 1};
  o.boundary = grid::BoundaryKind::ZeroGradient;
  o.compile.vector_width = vector_width;
  // no FMA contraction: scalar and vector code stay bitwise comparable,
  // and so do the pre- and post-restart halves of a split run
  o.compile.jit_extra_flags = "-ffp-contract=off";
  o.with_health(obs::HealthOptions{}.enable().every(5));
  return o;
}

void init_seed(app::Simulation& sim, double eps) {
  sim.init_phi([&](long long x, long long y, long long, int c) {
    const double d =
        std::sqrt(double((x - 16) * (x - 16) + y * y)) - 6.0;
    const double seed = app::interface_profile(d, 2.5 * eps);
    if (c == 0) return 1.0 - seed;
    return c == 1 ? seed : 0.0;
  });
  sim.init_mu([](long long, long long, long long, int) { return 0.0; });
}

/// A noise-enabled run split by checkpoint/restart must match the
/// uninterrupted run bitwise: state, step counter and accumulated time.
void check_bitwise_split_run(int vector_width) {
  TempDir dir("ckpt");
  ASSERT_FALSE(dir.path.empty());
  const app::GrandChemModel model = noisy_model();
  const double eps = model.params().epsilon;

  app::Simulation whole(model, noisy_opts(vector_width));
  init_seed(whole, eps);
  whole.run(20);

  {
    app::SimulationOptions o = noisy_opts(vector_width);
    o.with_resilience(resilience::ResilienceOptions{}.every(10)
                          .with_directory(dir.path));
    app::Simulation first(model, o);
    init_seed(first, eps);
    first.run(10);
    EXPECT_EQ(first.resilience_stats().checkpoint_files, 1u);
  }
  ASSERT_TRUE(fs::exists(resilience::manifest_path(dir.path)));

  app::SimulationOptions o = noisy_opts(vector_width);
  o.with_resilience(resilience::ResilienceOptions{}.with_restart(dir.path));
  app::Simulation second(model, o);  // no init: state comes from disk
  EXPECT_EQ(second.step_count(), 10);
  EXPECT_TRUE(second.resilience_stats().restarted);
  second.run(10);

  EXPECT_EQ(second.step_count(), whole.step_count());
  EXPECT_EQ(second.time(), whole.time());
  EXPECT_EQ(Array::max_abs_diff(second.phi(), whole.phi()), 0.0);
  EXPECT_EQ(Array::max_abs_diff(second.mu(), whole.mu()), 0.0);
}

TEST(CheckpointRestart, BitwiseWithNoiseScalar) {
  check_bitwise_split_run(1);
}

TEST(CheckpointRestart, BitwiseWithNoiseVector) {
  check_bitwise_split_run(4);
}

TEST(CheckpointRestart, RejectsTruncatedState) {
  TempDir dir("trunc");
  ASSERT_FALSE(dir.path.empty());
  const app::GrandChemModel model = noisy_model();
  {
    app::SimulationOptions o = noisy_opts(1);
    resilience::FaultPlan faults;
    faults.truncate_checkpoint = true;
    o.with_resilience(resilience::ResilienceOptions{}.every(5)
                          .with_directory(dir.path)
                          .with_faults(faults));
    app::Simulation sim(model, o);
    init_seed(sim, model.params().epsilon);
    sim.run(5);
    EXPECT_GE(sim.resilience_stats().faults_injected, 1u);
  }
  app::SimulationOptions o = noisy_opts(1);
  o.with_resilience(resilience::ResilienceOptions{}.with_restart(dir.path));
  EXPECT_THROW(app::Simulation(model, o), Error)
      << "a truncated state file must be rejected, not half-restored";
}

TEST(CheckpointRestart, RejectsLayoutMismatch) {
  TempDir dir("layout");
  ASSERT_FALSE(dir.path.empty());
  const app::GrandChemModel model = noisy_model();
  {
    app::SimulationOptions o = noisy_opts(1);
    o.with_resilience(resilience::ResilienceOptions{}.every(5)
                          .with_directory(dir.path));
    app::Simulation sim(model, o);
    init_seed(sim, model.params().epsilon);
    sim.run(5);
  }
  app::SimulationOptions o = noisy_opts(1);
  o.cells = {48, 48, 1};  // not the geometry the checkpoint came from
  o.with_resilience(resilience::ResilienceOptions{}.with_restart(dir.path));
  EXPECT_THROW(app::Simulation(model, o), Error);
}

TEST(CheckpointRestart, ChecksumCatchesBitFlip) {
  TempDir dir("sum");
  ASSERT_FALSE(dir.path.empty());
  const FieldPtr f = Field::create("a", 2, 2);
  Array a(f, {8, 4, 1}, 2);
  for (long long y = 0; y < 4; ++y) {
    for (long long x = 0; x < 8; ++x) {
      a.at(x, y, 0, 0) = double(x + 10 * y);
      a.at(x, y, 0, 1) = -double(x);
    }
  }
  resilience::CheckpointMeta meta;
  meta.step = 3;
  meta.time = 0.75;
  meta.dt = 0.25;
  meta.layout = "test";
  resilience::write_checkpoint(dir.path, meta, {{"a", &a}});

  // round-trips clean as written
  Array b(f, {8, 4, 1}, 2);
  const auto back =
      resilience::read_checkpoint(dir.path, {{"a", &b}}, "test");
  EXPECT_EQ(back.step, 3);
  EXPECT_EQ(back.time, 0.75);
  EXPECT_EQ(Array::max_abs_diff(a, b), 0.0);

  // flip one byte of the state file: the manifest checksum must catch it
  std::FILE* fp = std::fopen((dir.path + "/state.bin").c_str(), "r+b");
  ASSERT_NE(fp, nullptr);
  std::fseek(fp, 17, SEEK_SET);
  const int c = std::fgetc(fp);
  std::fseek(fp, 17, SEEK_SET);
  std::fputc(c ^ 0x40, fp);
  std::fclose(fp);
  EXPECT_THROW(resilience::read_checkpoint(dir.path, {{"a", &b}}, "test"),
               Error);
}

TEST(Snapshot, RoundTripAndGuards) {
  Array a(Field::create("s", 2, 1), {6, 3, 1}, 1);
  for (long long y = 0; y < 3; ++y) {
    for (long long x = 0; x < 6; ++x) a.at(x, y, 0, 0) = double(x * y + x);
  }
  resilience::Snapshot snap;
  EXPECT_FALSE(snap.valid());
  EXPECT_THROW(snap.restore({&a}), Error);
  snap.capture({7, 1.5, 0.1}, {&a});
  EXPECT_TRUE(snap.valid());
  a.at(2, 1, 0, 0) = 999.0;
  snap.restore({&a});
  EXPECT_EQ(a.at(2, 1, 0, 0), 4.0);  // x*y + x at (2,1)
  EXPECT_EQ(snap.meta().step, 7);
}

TEST(JitFallback, DegradesToScalar) {
  const app::GrandChemModel model = noisy_model();
  app::SimulationOptions o = noisy_opts(4);
  resilience::FaultPlan faults;
  faults.fail_jit_attempts = 1;  // width-4 attempt dies, scalar survives
  o.with_resilience(resilience::ResilienceOptions{}.with_faults(faults));
  app::Simulation sim(model, o);
  const obs::CompileReport& cr = sim.compiled().compile_report();
  EXPECT_EQ(cr.backend_tier, "scalar");
  EXPECT_EQ(cr.vector_width, 1);
  EXPECT_EQ(cr.fallback_attempts, 1);
  EXPECT_EQ(cr.fallback_reason, "injected jit fault");
}

TEST(JitFallback, DegradesToInterpreterAndStillRuns) {
  const app::GrandChemModel model = noisy_model();
  app::SimulationOptions o = noisy_opts(4);
  resilience::FaultPlan faults;
  faults.fail_jit_attempts = 1 << 20;  // every attempt dies
  o.with_resilience(resilience::ResilienceOptions{}.with_faults(faults));
  app::Simulation sim(model, o);
  const obs::CompileReport& cr = sim.compiled().compile_report();
  EXPECT_EQ(cr.backend_tier, "interpreter");
  EXPECT_EQ(cr.fallback_attempts, 2);
  init_seed(sim, model.params().epsilon);
  sim.run(3);  // the degraded run still steps and stays finite
  EXPECT_LT(app::phase_statistics(sim.phi()).simplex_violation, 1e-6);
}

TEST(JitFallback, NoTempLeakOnRealCompilerError) {
  TempDir scratch("jitscratch");
  ASSERT_FALSE(scratch.path.empty());
  EnvVar env("PFC_JIT_TMPDIR", scratch.path.c_str());
  const app::GrandChemModel model = noisy_model();
  app::SimulationOptions o = noisy_opts(1);
  // a genuinely failing external compile (unknown flag), not an injected one
  o.compile.jit_extra_flags = "-fthis-flag-does-not-exist";
  app::Simulation sim(model, o);
  const obs::CompileReport& cr = sim.compiled().compile_report();
  EXPECT_EQ(cr.backend_tier, "interpreter");
  EXPECT_FALSE(cr.fallback_reason.empty());
  EXPECT_NE(cr.fallback_reason, "injected jit fault");
  // the failed attempts must have cleaned up their pfc_jit_* scratch dirs
  int leftovers = 0;
  for (const auto& e : fs::directory_iterator(scratch.path)) {
    (void)e;
    ++leftovers;
  }
  EXPECT_EQ(leftovers, 0) << "JIT scratch directories leaked in "
                          << scratch.path;
}

TEST(JitFallback, StrictVectorWidthEnv) {
  {
    EnvVar env("PFC_VECTOR_WIDTH", "banana");
    EXPECT_THROW(backend::probe_native_vector_width(), Error);
  }
  {
    EnvVar env("PFC_VECTOR_WIDTH", "16");
    EXPECT_THROW(backend::probe_native_vector_width(), Error);
  }
  {
    EnvVar env("PFC_VECTOR_WIDTH", "2");
    EXPECT_EQ(backend::probe_native_vector_width(), 2);
  }
}

TEST(FaultInject, ParseGrammar) {
  const auto p =
      resilience::FaultPlan::parse("nan@12:3,4,5; jit=2 ;truncate");
  EXPECT_EQ(p.nan_step, 12);
  EXPECT_EQ(p.nan_cell[0], 3);
  EXPECT_EQ(p.nan_cell[1], 4);
  EXPECT_EQ(p.nan_cell[2], 5);
  EXPECT_EQ(p.fail_jit_attempts, 2);
  EXPECT_TRUE(p.truncate_checkpoint);
  EXPECT_TRUE(p.any());

  const auto bare = resilience::FaultPlan::parse("nan@7");
  EXPECT_EQ(bare.nan_step, 7);
  EXPECT_EQ(bare.nan_cell[0], 0);
  EXPECT_FALSE(resilience::FaultPlan::parse("").any());

  EXPECT_THROW(resilience::FaultPlan::parse("bogus"), Error);
  EXPECT_THROW(resilience::FaultPlan::parse("nan@"), Error);
  EXPECT_THROW(resilience::FaultPlan::parse("nan@3:1,2"), Error);
  EXPECT_THROW(resilience::FaultPlan::parse("jit=x"), Error);
}

TEST(FaultInject, EnvOverridesOptions) {
  resilience::ResilienceOptions opts;
  opts.faults.nan_step = 99;
  {
    EnvVar env("PFC_FAULT", "nan@3");
    EXPECT_EQ(resilience::effective_faults(opts).nan_step, 3);
  }
  EXPECT_EQ(resilience::effective_faults(opts).nan_step, 99);
}

TEST(FaultInject, NanRecoversViaRollback) {
  const app::GrandChemModel model = noisy_model();
  app::SimulationOptions o = noisy_opts(1);
  o.with_health(obs::HealthOptions{}.enable().every(1).with_policy(
      obs::HealthPolicy::Recover));
  resilience::FaultPlan faults;
  faults.nan_step = 7;
  faults.nan_cell = {5, 5, 0};
  o.with_resilience(resilience::ResilienceOptions{}.every(5)
                        .with_faults(faults));
  app::Simulation sim(model, o);
  init_seed(sim, model.params().epsilon);
  const obs::RunReport rep = sim.run(20);  // net steps, despite the rollback
  EXPECT_EQ(sim.step_count(), 20);
  EXPECT_EQ(rep.resilience.rollbacks, 1u);
  EXPECT_EQ(rep.resilience.faults_injected, 1u);
  // the final state must be clean: the injected NaN was rolled away
  EXPECT_LT(app::phase_statistics(sim.phi()).simplex_violation, 1e-6);
  for (long long y = 0; y < 32; ++y) {
    for (long long x = 0; x < 32; ++x) {
      ASSERT_TRUE(std::isfinite(sim.phi().at(x, y, 0, 0)));
    }
  }
}

TEST(FaultInject, DtShrinkAppliedAndReported) {
  const app::GrandChemModel model = noisy_model();
  const double dt0 = model.params().dt;
  app::SimulationOptions o = noisy_opts(1);
  o.with_health(obs::HealthOptions{}.enable().every(1).with_policy(
      obs::HealthPolicy::Recover));
  resilience::FaultPlan faults;
  faults.nan_step = 3;
  o.with_resilience(resilience::ResilienceOptions{}.every(2)
                        .with_dt_shrink(0.5)
                        .with_faults(faults));
  app::Simulation sim(model, o);
  init_seed(sim, model.params().epsilon);
  const obs::RunReport rep = sim.run(6);
  EXPECT_EQ(sim.dt(), 0.5 * dt0);
  EXPECT_EQ(rep.resilience.dt_shrinks, 1u);
  EXPECT_EQ(rep.resilience.dt_current, 0.5 * dt0);
  EXPECT_EQ(sim.step_count(), 6);
}

TEST(FaultInject, GivesUpAfterMaxRetries) {
  const app::GrandChemModel model = noisy_model();
  app::SimulationOptions o = noisy_opts(1);
  o.with_health(obs::HealthOptions{}.enable().every(1).with_policy(
      obs::HealthPolicy::Recover));
  resilience::FaultPlan faults;
  faults.nan_step = 2;
  o.with_resilience(resilience::ResilienceOptions{}.with_max_retries(0)
                        .with_faults(faults));
  app::Simulation sim(model, o);
  init_seed(sim, model.params().epsilon);
  EXPECT_THROW(sim.run(5), Error);
}

TEST(Distributed, CheckpointRestartSerialMultiBlock) {
  TempDir dir("dist");
  ASSERT_FALSE(dir.path.empty());
  const app::GrandChemModel model = noisy_model();
  const auto base = app::DistributedOptions{}
                        .with_cells(32, 32)
                        .with_blocks(2, 2)
                        .with_boundary(grid::BoundaryKind::ZeroGradient)
                        .with_health(obs::HealthOptions{}.enable().every(5));
  const auto init = [&](app::DistributedSimulation& sim) {
    sim.init(
        [&](long long x, long long y, long long, int c) {
          const double d =
              std::sqrt(double((x - 16) * (x - 16) + y * y)) - 6.0;
          const double s =
              app::interface_profile(d, 2.5 * model.params().epsilon);
          if (c == 0) return 1.0 - s;
          return c == 1 ? s : 0.0;
        },
        [](long long, long long, long long, int) { return 0.0; });
  };

  app::DistributedSimulation whole(model, base, nullptr);
  init(whole);
  whole.run(20);

  {
    auto o = base;
    o.with_resilience(resilience::ResilienceOptions{}.every(10)
                          .with_directory(dir.path));
    app::DistributedSimulation first(model, o, nullptr);
    init(first);
    first.run(10);
    EXPECT_EQ(first.resilience_stats().checkpoint_files, 1u);
  }

  auto o = base;
  o.with_resilience(resilience::ResilienceOptions{}.with_restart(dir.path));
  app::DistributedSimulation second(model, o, nullptr);
  EXPECT_EQ(second.step_count(), 10);
  second.run(10);

  const std::vector<double> pw = whole.gather_phi();
  const std::vector<double> ps = second.gather_phi();
  ASSERT_EQ(pw.size(), ps.size());
  for (std::size_t i = 0; i < pw.size(); ++i) {
    ASSERT_EQ(pw[i], ps[i]) << "mismatch at flat index " << i;
  }
}

TEST(Distributed, NanRecoversViaRollback) {
  const app::GrandChemModel model = noisy_model();
  auto o = app::DistributedOptions{}
               .with_cells(32, 32)
               .with_blocks(2, 2)
               .with_boundary(grid::BoundaryKind::ZeroGradient)
               .with_health(obs::HealthOptions{}.enable().every(1).with_policy(
                   obs::HealthPolicy::Recover));
  resilience::FaultPlan faults;
  faults.nan_step = 4;
  faults.nan_cell = {20, 20, 0};  // lives in one specific block
  o.with_resilience(resilience::ResilienceOptions{}.every(3)
                        .with_faults(faults));
  app::DistributedSimulation sim(model, o, nullptr);
  sim.init(
      [&](long long x, long long y, long long, int c) {
        const double d =
            std::sqrt(double((x - 16) * (x - 16) + y * y)) - 6.0;
        const double s =
            app::interface_profile(d, 2.5 * model.params().epsilon);
        if (c == 0) return 1.0 - s;
        return c == 1 ? s : 0.0;
      },
      [](long long, long long, long long, int) { return 0.0; });
  sim.run(10);
  EXPECT_EQ(sim.step_count(), 10);
  EXPECT_EQ(sim.resilience_stats().rollbacks, 1u);
  for (const double v : sim.gather_phi()) ASSERT_TRUE(std::isfinite(v));
}

}  // namespace
}  // namespace pfc
