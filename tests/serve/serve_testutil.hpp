// Shared fixtures for the serve-tier test suites.
#pragma once

#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

namespace pfc::serve {

/// A throwaway directory for sockets, caches and logs; removed on scope
/// exit. Unix-socket paths must stay short (sun_path is ~108 bytes), so
/// this lives under the system temp directory, not the build tree.
struct TempDir {
  TempDir() {
    namespace fs = std::filesystem;
    std::string tmpl = (fs::temp_directory_path() / "pfc_srv_XXXXXX").string();
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    path = ::mkdtemp(buf.data());
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  std::string path;
};

}  // namespace pfc::serve
