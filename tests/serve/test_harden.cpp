// Hardening layer of the serve daemon (DESIGN.md §12): admission control
// and per-tenant quotas, cooperative cancellation (client, deadline,
// shutdown), the hung-job watchdog, the TCP transport, and the
// deterministic fault-injection plans that make every recovery path a
// plain ctest. The three cancel paths are driven end to end through real
// sockets; the daemon must survive every abuse here and still answer a
// ping afterwards.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "pfc/app/cancel.hpp"
#include "pfc/app/jobspec.hpp"
#include "pfc/backend/kernel_cache.hpp"
#include "pfc/serve/admission.hpp"
#include "pfc/serve/fault.hpp"
#include "pfc/serve/server.hpp"
#include "pfc/serve/transport.hpp"

#include "serve_testutil.hpp"

namespace pfc::serve {
namespace {

using obs::Json;

/// Polls `pred` every 10 ms for up to `seconds`; true when it held.
bool eventually(double seconds, const std::function<bool()>& pred) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

/// State of job `id` in the server's snapshot ("" when unknown).
std::string state_of(const JobServer& server, long long id) {
  for (const JobStatus& s : server.jobs()) {
    if (s.id == id) return s.state;
  }
  return "";
}

const Json& field(const Json& j, const char* key) {
  const Json* v = j.find(key);
  EXPECT_NE(v, nullptr) << "missing \"" << key << "\" in " << j.dump(-1);
  static const Json null_json;
  return v != nullptr ? *v : null_json;
}

/// A job small enough to finish in well under a second.
app::JobSpec quick_spec(const std::string& name) {
  app::JobSpec spec;
  spec.name = name;
  spec.steps = 3;
  spec.simulation.cells = {32, 32, 1};
  spec.simulation.threads = 1;
  return spec;
}

/// A job that runs for many seconds unless cancelled — the cancel token
/// is checked every step, so it stops within one step cadence.
app::JobSpec long_spec(const std::string& name) {
  app::JobSpec spec = quick_spec(name);
  spec.steps = 4000000;
  spec.progress_every = 1000;
  return spec;
}

ServeOptions quiet_options(const std::string& dir) {
  ServeOptions opts;
  opts.socket_path = dir + "/serve.sock";
  opts.workers = 1;
  opts.quiet = true;
  opts.monitor_period_seconds = 0.05;
  return opts;
}

/// Compiles quick_spec's kernels into `dir`/cache via a throwaway daemon.
/// Tests that arm a sub-second watchdog must pre-warm: the heartbeat only
/// starts with the first progress sample, so a cold JIT compile on a
/// loaded CI box would be indistinguishable from a hung worker — which is
/// exactly the documented ServeOptions::watchdog_seconds contract.
void warm_kernel_cache(const std::string& dir) {
  ServeOptions opts = quiet_options(dir);
  opts.socket_path = dir + "/warm.sock";
  opts.cache.directory = dir + "/cache";
  JobServer server(opts);
  server.start();
  Client client(opts.socket_path);
  const Json terminal = client.submit(quick_spec("cache-warm").to_json());
  ASSERT_EQ(terminal.find("event")->str(), "finished") << terminal.dump(-1);
  server.stop();
}

/// Runs client.submit on a background thread, capturing the terminal
/// event; join() before reading it.
struct AsyncSubmit {
  AsyncSubmit(const std::string& endpoint, const Json& spec)
      : thread([this, endpoint, spec] {
          try {
            Client client(endpoint);
            terminal = client.submit(spec);
          } catch (const Error& e) {
            error = e.what();
          }
        }) {}
  ~AsyncSubmit() {
    if (thread.joinable()) thread.join();
  }
  void join() { thread.join(); }

  Json terminal;
  std::string error;
  std::thread thread;
};

// --- fault plans -------------------------------------------------------------

TEST(HardenFault, ParsesEveryClause) {
  EXPECT_FALSE(ServeFaultPlan::parse("").any());
  const ServeFaultPlan one = ServeFaultPlan::parse("hang-worker");
  EXPECT_EQ(one.hang_job, 1);
  const ServeFaultPlan all = ServeFaultPlan::parse(
      "hang-worker@7, delay-ms=40, drop-connection@3, partial-write");
  EXPECT_EQ(all.hang_job, 7);
  EXPECT_EQ(all.delay_ms, 40);
  EXPECT_EQ(all.drop_after_writes, 3);
  EXPECT_TRUE(all.partial_write);
  EXPECT_TRUE(all.any());
}

TEST(HardenFault, RejectsJunkNamingTheClause) {
  EXPECT_THROW(ServeFaultPlan::parse("wibble"), Error);
  EXPECT_THROW(ServeFaultPlan::parse("delay-ms=soon"), Error);
  EXPECT_THROW(ServeFaultPlan::parse("hang-worker@"), Error);
  try {
    ServeFaultPlan::parse("delay-ms=40,wobble");
    FAIL() << "expected a parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("wobble"), std::string::npos);
  }
}

TEST(HardenFault, CooperativeHangEndsOnToken) {
  app::CancelToken token;
  std::thread killer([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    token.request(app::CancelKind::Watchdog, "test");
  });
  EXPECT_TRUE(hang_until_cancelled(&token, 10.0));
  killer.join();
  EXPECT_FALSE(hang_until_cancelled(nullptr, 0.05));  // deadline path
}

// --- transport ---------------------------------------------------------------

TEST(HardenTransport, EndpointGrammar) {
  const Endpoint bare = parse_endpoint("a/b.sock");
  EXPECT_EQ(bare.kind, Endpoint::Kind::Unix);
  EXPECT_EQ(bare.path, "a/b.sock");
  const Endpoint ux = parse_endpoint("unix:/tmp/x.sock");
  EXPECT_EQ(ux.kind, Endpoint::Kind::Unix);
  EXPECT_EQ(ux.path, "/tmp/x.sock");
  const Endpoint tcp = parse_endpoint("tcp:localhost:1234");
  EXPECT_EQ(tcp.kind, Endpoint::Kind::Tcp);
  EXPECT_EQ(tcp.host, "localhost");
  EXPECT_EQ(tcp.port, 1234);
  const Endpoint wild = parse_endpoint("tcp::0");
  EXPECT_EQ(wild.host, "");
  EXPECT_EQ(wild.port, 0);
  EXPECT_THROW(parse_endpoint(""), Error);
  EXPECT_THROW(parse_endpoint("tcp:h:notaport"), Error);
  EXPECT_THROW(parse_endpoint("tcp:h:70000"), Error);
}

TEST(HardenTransport, RetryBackoffDeterministicWithJitter) {
  RetryPolicy policy;
  policy.attempts = 6;
  policy.backoff_initial_seconds = 0.05;
  policy.backoff_max_seconds = 0.4;
  double base = 0.05;
  for (int k = 0; k < 5; ++k) {
    const double s = retry_backoff_seconds(policy, k);
    EXPECT_EQ(s, retry_backoff_seconds(policy, k)) << "must be deterministic";
    EXPECT_GE(s, base);
    EXPECT_LT(s, base * 1.25) << "jitter stays in [1, 1.25)";
    base = std::min(base * 2.0, 0.4);
  }
}

TEST(HardenTransport, ConnectRefusedIsConnectError) {
  TempDir tmp;
  ClientOptions copts;
  copts.retries = 2;
  copts.backoff_initial_seconds = 0.01;
  Client client(tmp.path + "/nobody-home.sock", copts);
  EXPECT_THROW(client.ping(), ConnectError);
}

// --- admission control -------------------------------------------------------

TEST(HardenAdmission, QueueBoundAndTenantQuotas) {
  AdmissionLimits limits;
  limits.max_queue = 2;
  limits.tenant_max_running = 1;
  AdmissionControl ac(limits);
  std::string reason;
  EXPECT_TRUE(ac.try_admit("a", &reason));
  EXPECT_TRUE(ac.try_admit("a", &reason));
  EXPECT_FALSE(ac.try_admit("b", &reason)) << "total queue bound";
  EXPECT_NE(reason.find("queue full"), std::string::npos) << reason;

  // The running quota gates dispatch, not admission.
  EXPECT_TRUE(ac.can_start("a"));
  ac.on_start("a");
  EXPECT_FALSE(ac.can_start("a")) << "tenant at its concurrency limit";
  EXPECT_TRUE(ac.can_start("b"));
  ac.on_release("a");
  EXPECT_TRUE(ac.can_start("a"));
  EXPECT_EQ(ac.queued_total(), 1);
  EXPECT_EQ(ac.running_total(), 0);
  ac.on_discard("a");
  EXPECT_EQ(ac.queued_total(), 0);
}

TEST(HardenAdmission, PerTenantQueuedQuota) {
  AdmissionLimits limits;
  limits.tenant_max_queued = 1;
  AdmissionControl ac(limits);
  std::string reason;
  EXPECT_TRUE(ac.try_admit("a", &reason));
  EXPECT_FALSE(ac.try_admit("a", &reason));
  EXPECT_NE(reason.find("queued quota"), std::string::npos) << reason;
  EXPECT_TRUE(ac.try_admit("b", &reason)) << "quota is per tenant";
}

// --- cancellation matrix -----------------------------------------------------

TEST(HardenCancel, QueuedRunningAndFinishedJobs) {
  TempDir tmp;
  ServeOptions opts = quiet_options(tmp.path);
  JobServer server(opts);
  server.start();
  Client client(opts.socket_path);

  // Job 1 finishes; cancelling it afterwards acks its terminal state.
  ASSERT_EQ(field(client.submit(quick_spec("warm").to_json()), "event").str(),
            "finished");
  const Json done_ack = client.cancel(1);
  EXPECT_EQ(field(done_ack, "event").str(), "cancel_ack");
  EXPECT_EQ(field(done_ack, "state").str(), "finished");

  // Job 2 runs for minutes unless cancelled; job 3 sits behind it in the
  // queue (one worker).
  AsyncSubmit running(opts.socket_path, long_spec("long-running").to_json());
  ASSERT_TRUE(eventually(
      30.0, [&] { return state_of(server, 2) == "running"; }));
  AsyncSubmit queued(opts.socket_path, long_spec("stuck-behind").to_json());
  ASSERT_TRUE(eventually(
      10.0, [&] { return state_of(server, 3) == "queued"; }));

  // Cancel of a queued job is immediate: ack "cancelled", terminal event
  // on the submitter's stream, no worker ever touches it.
  const Json qack = client.cancel(3);
  EXPECT_EQ(field(qack, "event").str(), "cancel_ack");
  EXPECT_EQ(field(qack, "state").str(), "cancelled");
  queued.join();
  ASSERT_TRUE(queued.error.empty()) << queued.error;
  EXPECT_EQ(field(queued.terminal, "event").str(), "cancelled");
  EXPECT_EQ(state_of(server, 3), "cancelled");

  // Cancel of the running job acks "cancelling" and lands within one step
  // cadence — the token is checked every step.
  const auto t0 = std::chrono::steady_clock::now();
  const Json rack = client.cancel(2);
  EXPECT_EQ(field(rack, "event").str(), "cancel_ack");
  EXPECT_EQ(field(rack, "state").str(), "cancelling");
  running.join();
  const double took =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_TRUE(running.error.empty()) << running.error;
  EXPECT_EQ(field(running.terminal, "event").str(), "cancelled");
  EXPECT_NE(field(running.terminal, "reason").str().find("client"),
            std::string::npos);
  EXPECT_LT(took, 10.0) << "cancel must not wait for the job to finish";
  EXPECT_EQ(state_of(server, 2), "cancelled");

  // Unknown ids are an error event, not a crash.
  EXPECT_EQ(field(client.cancel(999), "event").str(), "error");
  EXPECT_EQ(field(client.ping(), "event").str(), "pong");
  server.stop();
}

// --- deadlines ---------------------------------------------------------------

TEST(HardenDeadline, RunningJobExpiresAtStepGranularity) {
  TempDir tmp;
  ServeOptions opts = quiet_options(tmp.path);
  JobServer server(opts);
  server.start();
  Client client(opts.socket_path);

  app::JobSpec spec = long_spec("endless");
  spec.deadline_seconds = 0.4;
  const Json terminal = client.submit(spec.to_json());
  EXPECT_EQ(field(terminal, "event").str(), "deadline_exceeded")
      << terminal.dump(-1);
  EXPECT_NE(field(terminal, "reason").str().find("deadline"),
            std::string::npos);
  EXPECT_EQ(state_of(server, 1), "deadline_exceeded");
  EXPECT_EQ(field(client.ping(), "event").str(), "pong");
  server.stop();
}

TEST(HardenDeadline, ShorterThanCompileStillExpires) {
  // delay-ms stands in for a slow cold JIT compile: the deadline elapses
  // before the first step ever runs, and must still win.
  TempDir tmp;
  ServeOptions opts = quiet_options(tmp.path);
  opts.fault = "delay-ms=800";
  JobServer server(opts);
  server.start();
  Client client(opts.socket_path);

  app::JobSpec spec = quick_spec("slow-compile");
  spec.deadline_seconds = 0.2;
  const Json terminal = client.submit(spec.to_json());
  EXPECT_EQ(field(terminal, "event").str(), "deadline_exceeded")
      << terminal.dump(-1);
  server.stop();
}

// --- per-tenant quota cycle --------------------------------------------------

TEST(HardenQuota, ExhaustionGatesDispatchUntilRelease) {
  TempDir tmp;
  ServeOptions opts = quiet_options(tmp.path);
  opts.workers = 2;
  opts.admission.tenant_max_running = 1;
  JobServer server(opts);
  server.start();
  Client client(opts.socket_path);

  // Tenant "acme" may only run one job at a time: the second is admitted
  // but waits in the queue even though a worker is idle.
  app::JobSpec first = long_spec("acme-1");
  first.tenant = "acme";
  AsyncSubmit running(opts.socket_path, first.to_json());
  ASSERT_TRUE(eventually(
      30.0, [&] { return state_of(server, 1) == "running"; }));

  app::JobSpec second = quick_spec("acme-2");
  second.tenant = "acme";
  AsyncSubmit waiting(opts.socket_path, second.to_json());
  ASSERT_TRUE(eventually(
      10.0, [&] { return state_of(server, 2) == "queued"; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_EQ(state_of(server, 2), "queued")
      << "second acme job must not start while the first runs";

  // Another tenant is not affected by acme's quota.
  app::JobSpec other = quick_spec("globex-1");
  other.tenant = "globex";
  const Json other_terminal = Client(opts.socket_path).submit(other.to_json());
  EXPECT_EQ(field(other_terminal, "event").str(), "finished");
  EXPECT_EQ(state_of(server, 2), "queued");

  // Releasing the slot (cancel) lets the queued job through.
  EXPECT_EQ(field(client.cancel(1), "event").str(), "cancel_ack");
  running.join();
  waiting.join();
  ASSERT_TRUE(waiting.error.empty()) << waiting.error;
  EXPECT_EQ(field(waiting.terminal, "event").str(), "finished");
  server.stop();
}

TEST(HardenQuota, FullQueueShedsWithRejectedEvent) {
  TempDir tmp;
  ServeOptions opts = quiet_options(tmp.path);
  opts.admission.max_queue = 1;
  JobServer server(opts);
  server.start();
  Client client(opts.socket_path);

  AsyncSubmit running(opts.socket_path, long_spec("hog").to_json());
  ASSERT_TRUE(eventually(
      30.0, [&] { return state_of(server, 1) == "running"; }));
  AsyncSubmit queued(opts.socket_path, long_spec("last-slot").to_json());
  ASSERT_TRUE(eventually(
      10.0, [&] { return state_of(server, 2) == "queued"; }));

  // The queue is full: the next submit is shed with an explicit reason and
  // allocates no job id or status entry.
  const Json rejected = client.submit(long_spec("overflow").to_json());
  EXPECT_EQ(field(rejected, "event").str(), "rejected");
  EXPECT_NE(field(rejected, "reason").str().find("queue full"),
            std::string::npos);
  EXPECT_EQ(server.jobs().size(), 2u);

  client.cancel(2);
  client.cancel(1);
  running.join();
  queued.join();
  server.stop();
}

// --- watchdog ----------------------------------------------------------------

TEST(HardenWatchdog, KillsHungJobAndDaemonRecovers) {
  TempDir tmp;
  warm_kernel_cache(tmp.path);  // the fresh job must outrun the watchdog
  ServeOptions opts = quiet_options(tmp.path);
  opts.cache.directory = tmp.path + "/cache";
  opts.fault = "hang-worker@1";  // job 1's worker wedges before running
  opts.watchdog_seconds = 0.5;
  JobServer server(opts);
  server.start();
  Client client(opts.socket_path);

  const Json terminal = client.submit(quick_spec("wedged").to_json());
  EXPECT_EQ(field(terminal, "event").str(), "error") << terminal.dump(-1);
  EXPECT_NE(field(terminal, "message").str().find("watchdog"),
            std::string::npos);
  EXPECT_EQ(state_of(server, 1), "failed");

  // The replacement worker keeps the pool at full strength: a fresh job
  // must complete even though the original worker retired.
  const Json fresh = client.submit(quick_spec("fresh").to_json());
  EXPECT_EQ(field(fresh, "event").str(), "finished") << fresh.dump(-1);
  server.stop();
}

// --- client loss & stream faults --------------------------------------------

TEST(HardenStream, ClientVanishingMidStreamDoesNotKillDaemon) {
  // The SIGPIPE regression: connect raw, submit, read up to "started",
  // then slam the connection shut. Every later progress/terminal write
  // hits a dead peer (EPIPE) and the daemon must shrug it off.
  TempDir tmp;
  ServeOptions opts = quiet_options(tmp.path);
  JobServer server(opts);
  server.start();

  app::JobSpec spec = quick_spec("orphaned");
  spec.steps = 400;
  spec.progress_every = 10;
  std::string err;
  const Json request = Json::parse(
      "{\"op\":\"submit\",\"spec\":" + spec.to_json().dump(-1) + "}", &err);
  ASSERT_TRUE(err.empty()) << err;

  {
    Endpoint ep;
    ep.kind = Endpoint::Kind::Unix;
    ep.path = opts.socket_path;
    LineChannel conn(connect_endpoint(ep));
    ASSERT_TRUE(conn.write_json(request));
    bool started = false;
    for (int i = 0; i < 8 && !started; ++i) {
      const Json ev = conn.read_json();
      ASSERT_TRUE(ev.is_object()) << "stream ended before started";
      started = field(ev, "event").str() == "started";
    }
    ASSERT_TRUE(started);
  }  // ~LineChannel: the client vanishes mid-stream

  ASSERT_TRUE(eventually(
      30.0, [&] { return state_of(server, 1) == "finished"; }))
      << "job must run to completion for a vanished submitter";
  Client client(opts.socket_path);
  EXPECT_EQ(field(client.ping(), "event").str(), "pong");
  server.stop();
}

TEST(HardenStream, DropConnectionFaultJobStillCompletes) {
  // Same scenario from the daemon's side: the fault closes the event
  // stream after 2 writes (accepted, started). The client sees a torn
  // stream (ProtocolError), the job still finishes.
  TempDir tmp;
  ServeOptions opts = quiet_options(tmp.path);
  opts.fault = "drop-connection@2";
  JobServer server(opts);
  server.start();

  Client client(opts.socket_path);
  EXPECT_THROW(client.submit(quick_spec("dropped").to_json()), ProtocolError);
  EXPECT_TRUE(eventually(
      30.0, [&] { return state_of(server, 1) == "finished"; }));
  server.stop();
}

TEST(HardenStream, PartialWriteFaultReassemblesCleanly) {
  TempDir tmp;
  ServeOptions opts = quiet_options(tmp.path);
  opts.fault = "partial-write";
  JobServer server(opts);
  server.start();
  Client client(opts.socket_path);
  const Json terminal = client.submit(quick_spec("torn-frames").to_json());
  EXPECT_EQ(field(terminal, "event").str(), "finished") << terminal.dump(-1);
  server.stop();
}

// --- TCP & slow-loris --------------------------------------------------------

TEST(HardenTcp, EphemeralPortRoundTrip) {
  TempDir tmp;
  ServeOptions opts = quiet_options(tmp.path);
  opts.tcp_port = 0;  // kernel picks; tcp_bound_port() reports
  opts.tcp_host = "127.0.0.1";
  JobServer server(opts);
  server.start();
  ASSERT_GT(server.tcp_bound_port(), 0);

  Client tcp_client("tcp:127.0.0.1:" + std::to_string(server.tcp_bound_port()));
  EXPECT_EQ(field(tcp_client.ping(), "event").str(), "pong");
  const Json terminal = tcp_client.submit(quick_spec("over-tcp").to_json());
  EXPECT_EQ(field(terminal, "event").str(), "finished") << terminal.dump(-1);

  // The Unix socket keeps working next to the TCP listener.
  Client unix_client(opts.socket_path);
  EXPECT_EQ(field(unix_client.ping(), "event").str(), "pong");
  server.stop();
}

TEST(HardenTcp, SlowLorisConnectionIsDroppedDaemonLives) {
  TempDir tmp;
  ServeOptions opts = quiet_options(tmp.path);
  opts.io_timeout_seconds = 0.3;
  JobServer server(opts);
  server.start();

  // Connect and send nothing: the per-connection read deadline must drop
  // us instead of wedging the dispatcher.
  Endpoint ep;
  ep.kind = Endpoint::Kind::Unix;
  ep.path = opts.socket_path;
  LineChannel loris(connect_endpoint(ep));
  set_io_timeout(loris.fd(), 5.0);  // bound our own read below
  std::string line;
  EXPECT_FALSE(loris.read_line(line)) << "expected EOF from the daemon";

  Client client(opts.socket_path);
  EXPECT_EQ(field(client.ping(), "event").str(), "pong");
  server.stop();
}

// --- graceful drain ----------------------------------------------------------

TEST(HardenDrain, CancelsStragglersWithShutdownKind) {
  TempDir tmp;
  ServeOptions opts = quiet_options(tmp.path);
  opts.drain_seconds = 0.2;
  JobServer server(opts);
  server.start();

  AsyncSubmit running(opts.socket_path, long_spec("straggler").to_json());
  ASSERT_TRUE(eventually(
      30.0, [&] { return state_of(server, 1) == "running"; }));
  AsyncSubmit queued(opts.socket_path, long_spec("never-ran").to_json());
  ASSERT_TRUE(eventually(
      10.0, [&] { return state_of(server, 2) == "queued"; }));

  server.drain_and_stop();
  running.join();
  queued.join();
  ASSERT_TRUE(running.error.empty()) << running.error;
  EXPECT_EQ(field(running.terminal, "event").str(), "cancelled");
  EXPECT_NE(field(running.terminal, "reason").str().find("shut"),
            std::string::npos);
  ASSERT_TRUE(queued.error.empty()) << queued.error;
  EXPECT_EQ(field(queued.terminal, "event").str(), "cancelled");
}

// --- metrics -----------------------------------------------------------------

TEST(HardenMetrics, HardeningCountersMove) {
  // One compact overload story so this test stands alone under any
  // --gtest_filter: saturate the queue (reject), cancel a queued and a
  // running job, expire a deadline, hang a worker (watchdog). The shared
  // registry is cumulative, so all assertions are floors.
  TempDir tmp;
  warm_kernel_cache(tmp.path);  // keep the watchdog off honest jobs' backs
  ServeOptions opts = quiet_options(tmp.path);
  opts.cache.directory = tmp.path + "/cache";
  opts.admission.max_queue = 1;
  opts.watchdog_seconds = 0.5;
  opts.fault = "hang-worker@4";
  JobServer server(opts);
  server.start();
  Client client(opts.socket_path);

  AsyncSubmit running(opts.socket_path, long_spec("m-long").to_json());
  ASSERT_TRUE(eventually(
      30.0, [&] { return state_of(server, 1) == "running"; }));
  AsyncSubmit queued(opts.socket_path, long_spec("m-queued").to_json());
  ASSERT_TRUE(eventually(
      10.0, [&] { return state_of(server, 2) == "queued"; }));
  EXPECT_EQ(field(client.submit(long_spec("m-reject").to_json()), "event")
                .str(),
            "rejected");
  EXPECT_EQ(field(client.cancel(2), "event").str(), "cancel_ack");
  EXPECT_EQ(field(client.cancel(1), "event").str(), "cancel_ack");
  running.join();
  queued.join();

  app::JobSpec expiring = long_spec("m-deadline");
  expiring.deadline_seconds = 0.3;
  EXPECT_EQ(field(client.submit(expiring.to_json()), "event").str(),
            "deadline_exceeded");
  const Json hung = client.submit(quick_spec("m-hang").to_json());
  EXPECT_EQ(field(hung, "event").str(), "error") << hung.dump(-1);

  const Json snap = client.metrics();
  const Json& metrics = field(snap, "metrics");
  const auto total = [&](const char* name) {
    const Json* fam = metrics.find(name);
    EXPECT_NE(fam, nullptr) << "missing family " << name;
    if (fam == nullptr) return 0.0;
    double sum = 0.0;
    for (const Json& v : field(*fam, "values").elements()) {
      const Json* value = v.find("value");
      sum += value != nullptr ? value->number() : 0.0;
    }
    return sum;
  };
  EXPECT_GE(total("pfc_jobs_rejected_total"), 1.0);
  EXPECT_GE(total("pfc_jobs_cancelled_total"), 1.0);
  EXPECT_GE(total("pfc_jobs_deadline_exceeded_total"), 1.0);
  EXPECT_GE(total("pfc_jobs_watchdog_killed_total"), 1.0);
  const Json* tenant = metrics.find("pfc_tenant_inflight");
  ASSERT_NE(tenant, nullptr);
  bool labelled = false;
  for (const Json& v : field(*tenant, "values").elements()) {
    const Json* labels = v.find("labels");
    labelled = labelled ||
               (labels != nullptr && labels->find("tenant") != nullptr);
  }
  EXPECT_TRUE(labelled) << "pfc_tenant_inflight must carry a tenant label";
  server.stop();
}

}  // namespace
}  // namespace pfc::serve
