// End-to-end serve round-trip: a JobServer on a Unix socket accepts two
// identical pfc-jobspec-v1 jobs; the second is served from the content-
// addressed kernel cache (cache.hit=true, near-zero external-compiler
// time) and both are bitwise-identical to a direct in-process run_job.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "pfc/app/jobspec.hpp"
#include "pfc/backend/kernel_cache.hpp"
#include "pfc/serve/server.hpp"

#include "serve_testutil.hpp"

namespace pfc::serve {
namespace {

using obs::Json;

app::JobSpec small_spec() {
  app::JobSpec spec;
  spec.name = "serve-roundtrip";
  spec.steps = 3;
  spec.simulation.cells = {32, 32, 1};
  spec.simulation.threads = 1;
  return spec;
}

const Json& field(const Json& j, const char* key) {
  const Json* v = j.find(key);
  EXPECT_NE(v, nullptr) << "missing \"" << key << "\" in " << j.dump(-1);
  static const Json null_json;
  return v != nullptr ? *v : null_json;
}

TEST(Serve, RoundTripSecondJobHitsKernelCache) {
  TempDir tmp;
  backend::KernelCache::shared().reset();

  ServeOptions opts;
  opts.socket_path = tmp.path + "/serve.sock";
  opts.workers = 2;
  opts.cache.directory = tmp.path + "/cache";
  opts.quiet = true;
  JobServer server(opts);
  server.start();

  Client client(opts.socket_path);
  const Json pong = client.ping();
  EXPECT_EQ(field(pong, "event").str(), "pong");
  EXPECT_EQ(field(pong, "protocol").str(), kProtocolVersion);

  // A malformed spec is rejected at the dispatcher with an error event and
  // must not take the daemon down.
  const Json rejected = client.submit(Json::object());
  EXPECT_EQ(field(rejected, "event").str(), "error");

  const Json spec_json = small_spec().to_json();
  std::vector<Json> events;
  const Json first = client.submit(spec_json, &events);
  ASSERT_EQ(field(first, "event").str(), "finished") << first.dump(-1);
  // accepted and started stream before the terminal event
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(field(events[0], "event").str(), "accepted");
  EXPECT_EQ(field(events[1], "event").str(), "started");

  const Json second = client.submit(spec_json);
  ASSERT_EQ(field(second, "event").str(), "finished") << second.dump(-1);

  // Identical jobs, identical fields.
  const Json& r1 = field(first, "result");
  const Json& r2 = field(second, "result");
  EXPECT_EQ(field(r1, "phi_fnv1a64").str(), field(r2, "phi_fnv1a64").str());
  EXPECT_EQ(field(r1, "mu_fnv1a64").str(), field(r2, "mu_fnv1a64").str());

  // The second submit is a kernel-cache hit with near-zero compile time.
  const Json& cache = field(field(r2, "compile"), "cache");
  EXPECT_TRUE(field(cache, "hit").boolean()) << cache.dump(-1);
  EXPECT_GE(field(cache, "hits").number(), 1.0);
  const Json* timers = field(r2, "compile").find("timers");
  ASSERT_NE(timers, nullptr);
  const Json* jit = timers->find("jit");
  if (jit != nullptr) {
    EXPECT_LE(field(*jit, "seconds").number(), 0.05);
  }

  // Daemon results match a direct in-process run bitwise (no cache for the
  // local run: its spec carries no cache_dir and the env is untouched).
  const app::JobResult local = app::run_job(small_spec());
  const Json local_json = local.to_json();
  EXPECT_EQ(field(r1, "phi_fnv1a64").str(),
            field(local_json, "phi_fnv1a64").str());
  EXPECT_EQ(field(r1, "mu_fnv1a64").str(),
            field(local_json, "mu_fnv1a64").str());

  // list reflects both finished jobs, with the telemetry enrichment.
  const Json listing = client.list();
  const auto jobs = field(listing, "jobs").elements();
  ASSERT_EQ(jobs.size(), 2u);
  for (const Json& job : jobs) {
    EXPECT_EQ(field(job, "state").str(), "finished");
    EXPECT_EQ(field(job, "name").str(), "serve-roundtrip");
    EXPECT_EQ(field(job, "preset").str(), "two_phase");
    EXPECT_GT(field(job, "submitted_unix").number(), 0.0);
    EXPECT_EQ(field(job, "fraction").number(), 1.0);
    EXPECT_GE(field(job, "duration_seconds").number(), 0.0);
    EXPECT_GE(field(job, "queued_seconds").number(), 0.0);
  }
  const auto statuses = server.jobs();
  ASSERT_EQ(statuses.size(), 2u);
  EXPECT_EQ(statuses[0].state, "finished");

  // Client-driven shutdown unblocks wait().
  const Json bye = client.shutdown_server();
  EXPECT_EQ(field(bye, "event").str(), "bye");
  server.wait();
  backend::KernelCache::shared().reset();
}

TEST(Serve, ProgressEventsStreamMonotoneToCompletion) {
  TempDir tmp;
  ServeOptions opts;
  opts.socket_path = tmp.path + "/serve.sock";
  opts.workers = 1;
  opts.quiet = true;
  JobServer server(opts);
  server.start();
  Client client(opts.socket_path);

  app::JobSpec spec = small_spec();
  spec.name = "progress-job";
  spec.steps = 24;
  spec.progress_every = 4;  // samples at steps 4, 8, ..., 24

  std::vector<Json> events;
  const Json terminal = client.submit(spec.to_json(), &events);
  ASSERT_EQ(field(terminal, "event").str(), "finished") << terminal.dump(-1);
  EXPECT_GE(field(terminal, "duration_seconds").number(), 0.0);
  EXPECT_GE(field(terminal, "queued_seconds").number(), 0.0);

  int progress_count = 0;
  long long prev_step = 0;
  bool saw_started = false;
  for (const Json& ev : events) {
    const std::string kind = field(ev, "event").str();
    if (kind == "started") {
      saw_started = true;
      EXPECT_GE(field(ev, "queued_seconds").number(), 0.0);
      continue;
    }
    if (kind != "progress") continue;
    ++progress_count;
    const long long step = (long long)(field(ev, "step").number());
    EXPECT_GT(step, prev_step) << "progress steps must strictly increase";
    EXPECT_EQ(step % 4, 0) << "samples land on the configured cadence";
    prev_step = step;
    EXPECT_EQ(field(ev, "steps_total").number(), 24.0);
    EXPECT_EQ(field(ev, "fraction").number(), double(step) / 24.0);
    EXPECT_GE(field(ev, "mlups").number(), 0.0);
    EXPECT_GE(field(ev, "eta_seconds").number(), 0.0);
    EXPECT_EQ(field(ev, "health_violations").number(), 0.0);
  }
  EXPECT_TRUE(saw_started);
  EXPECT_GE(progress_count, 3);
  EXPECT_EQ(prev_step, 24) << "the final sample covers the last step";

  // list reflects the completed progress.
  const Json listing = client.list();
  const auto jobs = field(listing, "jobs").elements();
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(field(jobs[0], "step").number(), 24.0);
  EXPECT_EQ(field(jobs[0], "fraction").number(), 1.0);
  server.stop();
}

TEST(Serve, MetricsOpsExposeJobActivity) {
  TempDir tmp;
  backend::KernelCache::shared().reset();
  ServeOptions opts;
  opts.socket_path = tmp.path + "/serve.sock";
  opts.workers = 1;
  opts.cache.directory = tmp.path + "/cache";
  opts.quiet = true;
  JobServer server(opts);
  server.start();
  Client client(opts.socket_path);

  const Json spec_json = small_spec().to_json();
  ASSERT_EQ(field(client.submit(spec_json), "event").str(), "finished");
  ASSERT_EQ(field(client.submit(spec_json), "event").str(), "finished");

  // The shared registry is process-wide and cumulative, so assert floors.
  const Json snap = client.metrics();
  EXPECT_EQ(field(snap, "schema").str(), obs::kMetricsSchema);
  const Json& metrics = field(snap, "metrics");
  const auto family_total = [&](const char* name) {
    const Json* fam = metrics.find(name);
    EXPECT_NE(fam, nullptr) << "missing family " << name;
    if (fam == nullptr) return 0.0;
    double total = 0.0;
    for (const Json& v : field(*fam, "values").elements()) {
      const Json* value = v.find("value");
      const Json* count = v.find("count");
      total += value != nullptr ? value->number()
                                : (count != nullptr ? count->number() : 0.0);
    }
    return total;
  };
  EXPECT_GE(family_total("pfc_jobs_submitted_total"), 2.0);
  EXPECT_GE(family_total("pfc_jobs_finished_total"), 2.0);
  EXPECT_GE(family_total("pfc_job_duration_seconds"), 2.0);
  EXPECT_GE(family_total("pfc_job_queue_seconds"), 2.0);
  EXPECT_GE(family_total("pfc_kernel_cache_hits_total"), 1.0)
      << "second identical job must hit the daemon's kernel cache";
  EXPECT_GE(family_total("pfc_kernel_cache_misses_total"), 1.0);
  EXPECT_GE(family_total("pfc_worker_busy_seconds_total"), 0.0);
  // idle daemon: nothing queued or running right now
  EXPECT_EQ(family_total("pfc_queue_depth"), 0.0);
  EXPECT_EQ(family_total("pfc_jobs_inflight"), 0.0);
  EXPECT_GT(family_total("pfc_job_mlups"), 0.0);

  // histogram internal consistency: +Inf cumulative == count
  const Json& dur = *metrics.find("pfc_job_duration_seconds");
  EXPECT_EQ(field(dur, "type").str(), "histogram");
  for (const Json& v : field(dur, "values").elements()) {
    const auto& buckets = field(v, "buckets").elements();
    ASSERT_FALSE(buckets.empty());
    EXPECT_EQ(field(buckets.back(), "le").str(), "+Inf");
    EXPECT_EQ(field(buckets.back(), "count").number(),
              field(v, "count").number());
  }

  // Prometheus exposition of the same registry
  const std::string prom = client.metrics_text();
  EXPECT_NE(prom.find("# TYPE pfc_jobs_submitted_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("# HELP pfc_queue_depth"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE pfc_job_duration_seconds histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("pfc_job_duration_seconds_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("pfc_job_mlups{preset=\"two_phase\"}"),
            std::string::npos);

  server.stop();
  backend::KernelCache::shared().reset();
}

TEST(Serve, ThreadRequestClampedToBudget) {
  // Admission control: workers × threads_per_job must not oversubscribe
  // the machine, so an absurd per-job thread request is clamped to
  // hardware_threads() / workers (floor 1) and counted in
  // pfc_threads_clamped_total. The job still runs to completion.
  TempDir tmp;
  ServeOptions opts;
  opts.socket_path = tmp.path + "/serve.sock";
  opts.workers = 2;
  opts.quiet = true;
  JobServer server(opts);
  server.start();
  Client client(opts.socket_path);

  app::JobSpec greedy = small_spec();
  greedy.name = "greedy-job";
  greedy.simulation.threads = 1024;
  const Json terminal = client.submit(greedy.to_json());
  ASSERT_EQ(field(terminal, "event").str(), "finished") << terminal.dump(-1);

  const int budget =
      std::max(1, ThreadPool::hardware_threads() / opts.workers);
  const Json& run = field(field(terminal, "result"), "run");
  const Json& threading = field(run, "threading");
  EXPECT_EQ(field(threading, "threads").number(), double(budget));

  const Json snap = client.metrics();
  const Json* fam = field(snap, "metrics").find("pfc_threads_clamped_total");
  ASSERT_NE(fam, nullptr);
  double clamped = 0.0;
  for (const Json& v : field(*fam, "values").elements()) {
    clamped += field(v, "value").number();
  }
  EXPECT_GE(clamped, 1.0);

  // A modest request inside the budget passes through untouched.
  app::JobSpec modest = small_spec();
  modest.simulation.threads = 1;
  const Json ok = client.submit(modest.to_json());
  ASSERT_EQ(field(ok, "event").str(), "finished");
  EXPECT_EQ(field(field(field(ok, "result"), "run"), "threading")
                .find("threads")
                ->number(),
            1.0);
  server.stop();
}

TEST(Serve, FailedJobReportsErrorAndServerSurvives) {
  TempDir tmp;
  ServeOptions opts;
  opts.socket_path = tmp.path + "/serve.sock";
  opts.workers = 1;
  opts.quiet = true;
  JobServer server(opts);
  server.start();
  Client client(opts.socket_path);

  // Valid spec, impossible job: solid_phase out of range fails inside the
  // worker (make_params), not the dispatcher — the job errors, the daemon
  // lives on.
  app::JobSpec bad = small_spec();
  bad.initial.solid_phase = 7;
  const Json terminal = client.submit(bad.to_json());
  EXPECT_EQ(field(terminal, "event").str(), "error");
  // job-level errors carry the same timing fields as finished events
  EXPECT_GE(field(terminal, "duration_seconds").number(), 0.0);
  EXPECT_GE(field(terminal, "queued_seconds").number(), 0.0);

  const Json pong = client.ping();
  EXPECT_EQ(field(pong, "event").str(), "pong");
  const auto statuses = server.jobs();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0].state, "failed");
  EXPECT_FALSE(statuses[0].error.empty());
  server.stop();
}

}  // namespace
}  // namespace pfc::serve
