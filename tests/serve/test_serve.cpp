// End-to-end serve round-trip: a JobServer on a Unix socket accepts two
// identical pfc-jobspec-v1 jobs; the second is served from the content-
// addressed kernel cache (cache.hit=true, near-zero external-compiler
// time) and both are bitwise-identical to a direct in-process run_job.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "pfc/app/jobspec.hpp"
#include "pfc/backend/kernel_cache.hpp"
#include "pfc/serve/server.hpp"

namespace pfc::serve {
namespace {

namespace fs = std::filesystem;
using obs::Json;

struct TempDir {
  TempDir() {
    std::string tmpl = (fs::temp_directory_path() / "pfc_srv_XXXXXX").string();
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    path = ::mkdtemp(buf.data());
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

app::JobSpec small_spec() {
  app::JobSpec spec;
  spec.name = "serve-roundtrip";
  spec.steps = 3;
  spec.simulation.cells = {32, 32, 1};
  spec.simulation.threads = 1;
  return spec;
}

const Json& field(const Json& j, const char* key) {
  const Json* v = j.find(key);
  EXPECT_NE(v, nullptr) << "missing \"" << key << "\" in " << j.dump(-1);
  static const Json null_json;
  return v != nullptr ? *v : null_json;
}

TEST(Serve, RoundTripSecondJobHitsKernelCache) {
  TempDir tmp;
  backend::KernelCache::shared().reset();

  ServeOptions opts;
  opts.socket_path = tmp.path + "/serve.sock";
  opts.workers = 2;
  opts.cache.directory = tmp.path + "/cache";
  opts.quiet = true;
  JobServer server(opts);
  server.start();

  Client client(opts.socket_path);
  const Json pong = client.ping();
  EXPECT_EQ(field(pong, "event").str(), "pong");
  EXPECT_EQ(field(pong, "protocol").str(), kProtocolVersion);

  // A malformed spec is rejected at the dispatcher with an error event and
  // must not take the daemon down.
  const Json rejected = client.submit(Json::object());
  EXPECT_EQ(field(rejected, "event").str(), "error");

  const Json spec_json = small_spec().to_json();
  std::vector<Json> events;
  const Json first = client.submit(spec_json, &events);
  ASSERT_EQ(field(first, "event").str(), "finished") << first.dump(-1);
  // accepted and started stream before the terminal event
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(field(events[0], "event").str(), "accepted");
  EXPECT_EQ(field(events[1], "event").str(), "started");

  const Json second = client.submit(spec_json);
  ASSERT_EQ(field(second, "event").str(), "finished") << second.dump(-1);

  // Identical jobs, identical fields.
  const Json& r1 = field(first, "result");
  const Json& r2 = field(second, "result");
  EXPECT_EQ(field(r1, "phi_fnv1a64").str(), field(r2, "phi_fnv1a64").str());
  EXPECT_EQ(field(r1, "mu_fnv1a64").str(), field(r2, "mu_fnv1a64").str());

  // The second submit is a kernel-cache hit with near-zero compile time.
  const Json& cache = field(field(r2, "compile"), "cache");
  EXPECT_TRUE(field(cache, "hit").boolean()) << cache.dump(-1);
  EXPECT_GE(field(cache, "hits").number(), 1.0);
  const Json* timers = field(r2, "compile").find("timers");
  ASSERT_NE(timers, nullptr);
  const Json* jit = timers->find("jit");
  if (jit != nullptr) {
    EXPECT_LE(field(*jit, "seconds").number(), 0.05);
  }

  // Daemon results match a direct in-process run bitwise (no cache for the
  // local run: its spec carries no cache_dir and the env is untouched).
  const app::JobResult local = app::run_job(small_spec());
  const Json local_json = local.to_json();
  EXPECT_EQ(field(r1, "phi_fnv1a64").str(),
            field(local_json, "phi_fnv1a64").str());
  EXPECT_EQ(field(r1, "mu_fnv1a64").str(),
            field(local_json, "mu_fnv1a64").str());

  // list reflects both finished jobs.
  const Json listing = client.list();
  const auto jobs = field(listing, "jobs").elements();
  ASSERT_EQ(jobs.size(), 2u);
  for (const Json& job : jobs) {
    EXPECT_EQ(field(job, "state").str(), "finished");
    EXPECT_EQ(field(job, "name").str(), "serve-roundtrip");
  }
  const auto statuses = server.jobs();
  ASSERT_EQ(statuses.size(), 2u);
  EXPECT_EQ(statuses[0].state, "finished");

  // Client-driven shutdown unblocks wait().
  const Json bye = client.shutdown_server();
  EXPECT_EQ(field(bye, "event").str(), "bye");
  server.wait();
  backend::KernelCache::shared().reset();
}

TEST(Serve, FailedJobReportsErrorAndServerSurvives) {
  TempDir tmp;
  ServeOptions opts;
  opts.socket_path = tmp.path + "/serve.sock";
  opts.workers = 1;
  opts.quiet = true;
  JobServer server(opts);
  server.start();
  Client client(opts.socket_path);

  // Valid spec, impossible job: solid_phase out of range fails inside the
  // worker (make_params), not the dispatcher — the job errors, the daemon
  // lives on.
  app::JobSpec bad = small_spec();
  bad.initial.solid_phase = 7;
  const Json terminal = client.submit(bad.to_json());
  EXPECT_EQ(field(terminal, "event").str(), "error");

  const Json pong = client.ping();
  EXPECT_EQ(field(pong, "event").str(), "pong");
  const auto statuses = server.jobs();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0].state, "failed");
  EXPECT_FALSE(statuses[0].error.empty());
  server.stop();
}

}  // namespace
}  // namespace pfc::serve
