// Support-layer tests: thread pool semantics, aligned allocation, error
// plumbing, analysis utilities, CSV output.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>

#include "pfc/app/analysis.hpp"
#include "pfc/app/params.hpp"
#include "pfc/app/simulation.hpp"
#include "pfc/grid/vtk.hpp"
#include "pfc/support/aligned.hpp"
#include "pfc/support/assert.hpp"
#include "pfc/support/thread_pool.hpp"

namespace pfc {
namespace {

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  pool.parallel_for(0, 1000, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      touched[std::size_t(i)].fetch_add(1);
    }
  });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolTest, EmptyAndSingleRanges) {
  ThreadPool pool(3);
  int calls = 0;
  pool.parallel_for(5, 5, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> count{0};
  pool.parallel_for(0, 1, [&](std::int64_t lo, std::int64_t hi) {
    count += int(hi - lo);
  });
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, RunOnAllUsesDistinctIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> seen(4);
  pool.run_on_all([&](int idx) { seen[std::size_t(idx)].fetch_add(1); });
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossManyRounds) {
  ThreadPool pool(3);
  std::atomic<long> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(0, 100, [&](std::int64_t lo, std::int64_t hi) {
      total += hi - lo;
    });
  }
  EXPECT_EQ(total.load(), 5000);
}

TEST(AlignedTest, AllocationAligned) {
  for (std::size_t n : {1u, 7u, 64u, 1000u}) {
    auto p = make_aligned<double>(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p.get()) % 64, 0u);
  }
  EXPECT_EQ(round_up(0, 8), 0u);
  EXPECT_EQ(round_up(1, 8), 8u);
  EXPECT_EQ(round_up(8, 8), 8u);
  EXPECT_EQ(round_up(9, 8), 16u);
}

TEST(AssertTest, MacrosThrowPfcError) {
  EXPECT_THROW(PFC_REQUIRE(false, "nope"), Error);
  try {
    PFC_ASSERT(1 == 2, "math broke");
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    return;
  }
  FAIL() << "PFC_ASSERT did not throw";
}

TEST(AnalysisTest, PhaseStatisticsKnownField) {
  auto f = Field::create("ph", 2, 2);
  Array a(f, {4, 4, 1}, 1);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) {
      const double v = x < 2 ? 1.0 : 0.0;
      a.at(x, y, 0, 0) = v;
      a.at(x, y, 0, 1) = 1.0 - v;
    }
  }
  const app::PhaseStats s = app::phase_statistics(a);
  EXPECT_DOUBLE_EQ(s.fractions[0], 0.5);
  EXPECT_DOUBLE_EQ(s.fractions[1], 0.5);
  EXPECT_DOUBLE_EQ(s.interface_fraction, 0.0);
  EXPECT_DOUBLE_EQ(s.simplex_violation, 0.0);
}

TEST(AnalysisTest, FrontPosition) {
  auto f = Field::create("fr", 2, 2);
  Array a(f, {4, 8, 1}, 1);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 4; ++x) {
      a.at(x, y, 0, 0) = y < 5 ? 0.0 : 1.0;  // liquid above y = 4
      a.at(x, y, 0, 1) = y < 5 ? 1.0 : 0.0;
    }
  }
  EXPECT_EQ(app::front_position(a, 0, 1), 4);
  a.fill_component(0, 1.0);
  EXPECT_EQ(app::front_position(a, 0, 1), -1);  // fully liquid
}

TEST(AnalysisTest, InterfaceMeasureOfFlatInterface) {
  auto f = Field::create("im", 2, 1);
  Array a(f, {16, 8, 1}, 1);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 16; ++x) {
      a.at(x, y, 0) = app::interface_profile(double(x) - 8.0, 6.0);
    }
  }
  // one interface crossing the 8-cell height: measure ~ 8 * dx
  const double m = app::interface_measure(a, 1.0, 2);
  EXPECT_NEAR(m, 8.0, 1.0);
}

TEST(CsvTest, HeaderOnceRowsAppended) {
  const std::string path = "/tmp/pfc_test_csv.csv";
  std::remove(path.c_str());
  grid::append_csv(path, {"a", "b"}, {1.0, 2.0});
  grid::append_csv(path, {"a", "b"}, {3.0, 4.0});
  std::ifstream in(path);
  std::string l1, l2, l3;
  std::getline(in, l1);
  std::getline(in, l2);
  std::getline(in, l3);
  EXPECT_EQ(l1, "a,b");
  EXPECT_EQ(l2, "1,2");
  EXPECT_EQ(l3, "3,4");
  std::remove(path.c_str());
}

TEST(CsvTest, MismatchedRowRejected) {
  EXPECT_THROW(grid::append_csv("/tmp/pfc_x.csv", {"a"}, {1.0, 2.0}), Error);
}

TEST(ProfileTest, InterfaceProfileProperties) {
  EXPECT_DOUBLE_EQ(app::interface_profile(-10.0, 4.0), 1.0);
  EXPECT_DOUBLE_EQ(app::interface_profile(10.0, 4.0), 0.0);
  EXPECT_DOUBLE_EQ(app::interface_profile(0.0, 4.0), 0.5);
  // monotone decreasing
  double prev = 1.0;
  for (double d = -3.0; d <= 3.0; d += 0.25) {
    const double v = app::interface_profile(d, 4.0);
    EXPECT_LE(v, prev + 1e-15);
    prev = v;
  }
}

}  // namespace
}  // namespace pfc
