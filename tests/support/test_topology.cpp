// Topology probe + slab-plan tests (DESIGN.md §11). A fake sysfs tree makes
// the probe deterministic on any machine: two packages, two NUMA nodes,
// two cores per package, one SMT sibling per core (8 logical cpus).
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

#include "pfc/support/assert.hpp"
#include "pfc/support/thread_pool.hpp"
#include "pfc/support/topology.hpp"

namespace pfc::support {
namespace {

namespace fs = std::filesystem;

void write_file(const fs::path& path, const std::string& text) {
  fs::create_directories(path.parent_path());
  std::ofstream out(path);
  out << text;
}

/// Builds the fake machine:
///   package 0 = node 0: cpu0 (core 0), cpu1 (core 1), smt cpu4, cpu5
///   package 1 = node 1: cpu2 (core 0), cpu3 (core 1), smt cpu6, cpu7
class FakeSysfs : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("pfc_fake_sysfs_" + std::to_string(::getpid()));
    fs::remove_all(root_);
    const fs::path cpu = root_ / "devices/system/cpu";
    write_file(cpu / "online", "0-7\n");
    const int package[8] = {0, 0, 1, 1, 0, 0, 1, 1};
    const int core[8] = {0, 1, 0, 1, 0, 1, 0, 1};
    for (int c = 0; c < 8; ++c) {
      const fs::path base = cpu / ("cpu" + std::to_string(c)) / "topology";
      write_file(base / "physical_package_id",
                 std::to_string(package[c]) + "\n");
      write_file(base / "core_id", std::to_string(core[c]) + "\n");
    }
    write_file(root_ / "devices/system/node/node0/cpulist", "0-1,4-5\n");
    write_file(root_ / "devices/system/node/node1/cpulist", "2-3,6-7\n");
  }
  void TearDown() override { fs::remove_all(root_); }

  fs::path root_;
};

TEST_F(FakeSysfs, DetectCountsPackagesNodesCoresAndSmt) {
  const Topology t = Topology::detect(root_.string(), false);
  ASSERT_EQ(t.cpus.size(), 8u);
  EXPECT_EQ(t.packages, 2);
  EXPECT_EQ(t.nodes, 2);
  EXPECT_EQ(t.cores, 4);
  // cpus are sorted by logical id; the first hyperthread of each (package,
  // core) pair is physical, the second is flagged smt.
  for (int c = 0; c < 8; ++c) {
    EXPECT_EQ(t.cpus[std::size_t(c)].cpu, c);
    EXPECT_EQ(t.cpus[std::size_t(c)].smt, c >= 4) << "cpu " << c;
  }
  EXPECT_EQ(t.cpus[2].package, 1);
  EXPECT_EQ(t.cpus[2].node, 1);
  EXPECT_EQ(t.cpus[5].node, 0);
}

TEST_F(FakeSysfs, CompactOrderFillsPackagePhysicalFirst) {
  const Topology t = Topology::detect(root_.string(), false);
  // package-major over physical cores, SMT siblings only afterwards
  EXPECT_EQ(t.pin_order(PinPolicy::Compact),
            (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST_F(FakeSysfs, ScatterOrderRoundRobinsNumaNodes) {
  const Topology t = Topology::detect(root_.string(), false);
  // alternate nodes so two workers already engage both memory controllers
  EXPECT_EQ(t.pin_order(PinPolicy::Scatter),
            (std::vector<int>{0, 2, 1, 3, 4, 6, 5, 7}));
}

TEST_F(FakeSysfs, NoneOrderIsEmpty) {
  const Topology t = Topology::detect(root_.string(), false);
  EXPECT_TRUE(t.pin_order(PinPolicy::None).empty());
}

TEST(TopologyTest, MissingTreeDegradesToFlatTopology) {
  const Topology t = Topology::detect("/nonexistent/sysfs/root", false);
  EXPECT_GE(t.cpus.size(), 1u);
  EXPECT_GE(t.packages, 1);
  EXPECT_GE(t.nodes, 1);
  EXPECT_GE(t.cores, 1);
}

TEST(TopologyTest, DetectRespectingAffinityNeverExceedsAllowedCpus) {
  const Topology t = Topology::detect();
  EXPECT_GE(allowed_cpu_count(), 1);
  EXPECT_LE(int(t.cpus.size()),
            std::max(allowed_cpu_count(),
                     int(std::thread::hardware_concurrency())));
}

TEST(TopologyTest, PinPolicyNamesRoundTrip) {
  for (PinPolicy p :
       {PinPolicy::None, PinPolicy::Compact, PinPolicy::Scatter}) {
    EXPECT_EQ(parse_pin_policy(pin_policy_name(p)), p);
  }
  EXPECT_THROW(parse_pin_policy("wat"), Error);
}

TEST(TopologyTest, HardwareThreadsWithinAffinityMask) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1);
  EXPECT_LE(ThreadPool::hardware_threads(), allowed_cpu_count());
}

TEST(SlabPlanTest, EvenSplitMatchesCeilDivision) {
  const SlabPlan p = SlabPlan::make(0, 100, 4);
  EXPECT_EQ(p.chunk, 25);
  for (int w = 0; w < 4; ++w) {
    const auto [lo, hi] = p.slab(w, 0, 100);
    EXPECT_EQ(lo, 25 * w);
    EXPECT_EQ(hi, 25 * (w + 1));
  }
}

TEST(SlabPlanTest, AlignedChunksCoverDisjointly) {
  const SlabPlan p = SlabPlan::make(0, 100, 3, 8);
  EXPECT_EQ(p.chunk, 40);  // ceil(100/3)=34, rounded up to 8
  std::int64_t expect_lo = 0;
  for (int w = 0; w < 3; ++w) {
    const auto [lo, hi] = p.slab(w, 0, 100);
    if (lo >= hi) continue;  // worker with no rows
    EXPECT_EQ(lo, expect_lo);
    if (w < 2) EXPECT_EQ(lo % 8, 0);
    expect_lo = hi;
  }
  EXPECT_EQ(expect_lo, 100);
}

TEST(SlabPlanTest, ThinRangeLeavesTrailingWorkersEmpty) {
  const SlabPlan p = SlabPlan::make(0, 10, 4, 8);
  EXPECT_EQ(p.chunk, 8);
  EXPECT_EQ(p.slab(0, 0, 10), (std::pair<std::int64_t, std::int64_t>{0, 8}));
  EXPECT_EQ(p.slab(1, 0, 10), (std::pair<std::int64_t, std::int64_t>{8, 10}));
  for (int w : {2, 3}) {
    const auto [lo, hi] = p.slab(w, 0, 10);
    EXPECT_GE(lo, hi) << "worker " << w << " should be empty";
  }
}

TEST(SlabPlanTest, EdgeWorkersAbsorbGhostExtendedLimits) {
  // A ghost-extended launch box [-2, 103) must still tile disjointly:
  // worker 0 reaches down to lo_limit, the last worker up to hi_limit.
  const SlabPlan p = SlabPlan::make(0, 100, 4);
  EXPECT_EQ(p.slab(0, -2, 103).first, -2);
  EXPECT_EQ(p.slab(3, -2, 103).second, 103);
  std::int64_t expect_lo = -2;
  for (int w = 0; w < 4; ++w) {
    const auto [lo, hi] = p.slab(w, -2, 103);
    EXPECT_EQ(lo, expect_lo);
    expect_lo = hi;
  }
  EXPECT_EQ(expect_lo, 103);
}

TEST(SlabPlanTest, PinnedPoolReportsWorkerCpus) {
  // Pinning on the real machine: every worker gets a cpu from the detected
  // order (or the pool quietly degrades to unpinned on exotic hosts).
  ThreadPool pool(ThreadPoolOptions{2, PinPolicy::Compact});
  if (pool.pin_policy() == PinPolicy::Compact) {
    EXPECT_GE(pool.worker_cpu(0), 0);
    EXPECT_GE(pool.worker_cpu(1), 0);
  } else {
    EXPECT_EQ(pool.worker_cpu(0), -1);
  }
}

}  // namespace
}  // namespace pfc::support
