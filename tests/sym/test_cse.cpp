#include <gtest/gtest.h>

#include "pfc/sym/cse.hpp"
#include "pfc/sym/printer.hpp"
#include "pfc/sym/simplify.hpp"
#include "pfc/sym/subs.hpp"

namespace pfc::sym {
namespace {

/// Re-inlines all temporaries; the result must equal the original roots.
std::vector<Expr> reinline(const CseResult& r) {
  SubsMap map;
  for (const auto& [s, def] : r.temps) map.emplace_back(s, def);
  // later temps may reference earlier ones: substitute repeatedly
  std::vector<Expr> out;
  for (Expr root : r.roots) {
    for (std::size_t pass = 0; pass < r.temps.size() + 1; ++pass) {
      Expr next = substitute(root, map);
      if (next.get() == root.get()) break;
      root = next;
    }
    out.push_back(root);
  }
  return out;
}

TEST(CseTest, ExtractsRepeatedSubexpression) {
  Expr x = symbol("x"), y = symbol("y");
  Expr common = sqrt_(x + y);
  std::vector<Expr> roots = {common * x, common * y};
  CseResult r = cse(roots);
  ASSERT_GE(r.temps.size(), 1u);
  // the common sqrt must have been extracted
  bool found = false;
  for (const auto& [s, def] : r.temps) {
    (void)s;
    if (equals(def, common) || contains(def, x + y)) found = true;
  }
  EXPECT_TRUE(found);
  auto back = reinline(r);
  EXPECT_TRUE(equals(back[0], roots[0]));
  EXPECT_TRUE(equals(back[1], roots[1]));
}

TEST(CseTest, NoFalseExtraction) {
  Expr x = symbol("x"), y = symbol("y");
  std::vector<Expr> roots = {x + y};
  CseResult r = cse(roots);
  EXPECT_TRUE(r.temps.empty());
  EXPECT_TRUE(equals(r.roots[0], roots[0]));
}

TEST(CseTest, LeavesNotExtracted) {
  Expr x = symbol("x");
  std::vector<Expr> roots = {x + 1.0, x + 2.0, x * 3.0};
  CseResult r = cse(roots);
  EXPECT_TRUE(r.temps.empty());  // x itself is a leaf; 3x is trivial
}

TEST(CseTest, NestedTempsAreTopologicallyOrdered) {
  Expr x = symbol("x"), y = symbol("y");
  Expr inner = x * y + 1.0;
  Expr outer = sqrt_(inner);
  std::vector<Expr> roots = {outer + inner, outer * 2.0 + inner * x};
  CseResult r = cse(roots);
  ASSERT_GE(r.temps.size(), 2u);
  // each temp definition may only use previously defined temps
  for (std::size_t i = 0; i < r.temps.size(); ++i) {
    for (std::size_t j = i; j < r.temps.size(); ++j) {
      EXPECT_FALSE(contains(r.temps[i].second, r.temps[j].first));
    }
  }
  auto back = reinline(r);
  EXPECT_TRUE(equals(back[0], roots[0]));
  EXPECT_TRUE(equals(back[1], roots[1]));
}

TEST(CseTest, SharedAcrossRootsCounts) {
  Expr x = symbol("x");
  Expr heavy = exp_(pow(x, 2));
  std::vector<Expr> roots = {heavy, heavy * 2.0};
  CseResult r = cse(roots);
  ASSERT_EQ(r.temps.size(), 1u);
  EXPECT_TRUE(equals(r.temps[0].second, heavy));
  EXPECT_TRUE(equals(r.roots[0], r.temps[0].first));
}

TEST(CseTest, ValuePreservedOnRandomDag) {
  // property check across several seeds
  for (int seed = 0; seed < 10; ++seed) {
    Expr x = symbol("x"), y = symbol("y");
    unsigned state = static_cast<unsigned>(seed) * 69069u + 5;
    auto rnd = [&]() {
      state = state * 1664525u + 1013904223u;
      return state >> 20;
    };
    std::vector<Expr> pool = {x, y, x + y, x * y + 1.0};
    for (int i = 0; i < 8; ++i) {
      Expr a = pool[rnd() % pool.size()];
      Expr b = pool[rnd() % pool.size()];
      switch (rnd() % 4) {
        case 0: pool.push_back(a + b); break;
        case 1: pool.push_back(a * b + 1.0); break;
        case 2: pool.push_back(sqrt_(pow(a, 2) + 1.0)); break;
        case 3: pool.push_back(a * a + b); break;
      }
    }
    std::vector<Expr> roots = {pool.back(), pool[pool.size() - 2] + x};
    CseResult r = cse(roots);

    EvalContext ctx;
    ctx.symbols = {{"x", 1.25}, {"y", -0.75}};
    // evaluate temps in order, then roots
    for (const auto& [s, def] : r.temps) {
      ctx.symbols[s->name()] = evaluate(def, ctx);
    }
    for (std::size_t i = 0; i < roots.size(); ++i) {
      EXPECT_NEAR(evaluate(r.roots[i], ctx), evaluate(roots[i], ctx), 1e-12);
    }
  }
}

}  // namespace
}  // namespace pfc::sym
