// Differentiation tests: rule-level checks plus validation against central
// finite differences on random points.
#include <gtest/gtest.h>

#include <cmath>

#include "pfc/sym/diff.hpp"
#include "pfc/sym/printer.hpp"
#include "pfc/sym/simplify.hpp"

namespace pfc::sym {
namespace {

class DiffTest : public ::testing::Test {
 protected:
  Expr x = symbol("x");
  Expr y = symbol("y");
};

TEST_F(DiffTest, Polynomial) {
  EXPECT_TRUE(equals(diff(pow(x, 3), x), 3.0 * pow(x, 2)));
  EXPECT_TRUE(equals(diff(x * y, x), y));
  EXPECT_TRUE(equals(diff(num(5), x), num(0)));
  EXPECT_TRUE(equals(diff(y, x), num(0)));
}

TEST_F(DiffTest, ProductRule) {
  Expr e = x * x * y + 2.0 * x;
  EXPECT_TRUE(equals(diff(e, x), 2.0 * x * y + 2.0));
}

TEST_F(DiffTest, QuotientViaNegativePower) {
  // d/dx (1/x) = -1/x^2
  EXPECT_TRUE(equals(diff(pow(x, -1), x), -1.0 * pow(x, -2)));
}

TEST_F(DiffTest, ChainRuleSqrt) {
  // d/dx sqrt(x^2+1) = x / sqrt(x^2+1)
  Expr e = diff(sqrt_(pow(x, 2) + 1.0), x);
  Expr expected = x * pow(pow(x, 2) + 1.0, num(-0.5));
  EXPECT_TRUE(equals(e, expected)) << to_string(e);
}

TEST_F(DiffTest, ExpLog) {
  EXPECT_TRUE(equals(diff(exp_(2.0 * x), x), 2.0 * exp_(2.0 * x)));
  EXPECT_TRUE(equals(diff(log_(x), x), pow(x, -1)));
}

TEST_F(DiffTest, FieldRefAsVariable) {
  auto phi = Field::create("phi", 3, 2);
  Expr p0 = at(phi, 0), p1 = at(phi, 1);
  // d/dp0 (p0^2 p1 + p1) = 2 p0 p1
  Expr e = pow(p0, 2) * p1 + p1;
  EXPECT_TRUE(equals(diff(e, p0), 2.0 * p0 * p1));
  EXPECT_TRUE(equals(diff(e, p1), pow(p0, 2) + 1.0));
}

TEST_F(DiffTest, DiffNodeAsVariable) {
  // The variational-derivative use case: treat D0(phi) as an independent
  // variable of the integrand.
  auto phi = Field::create("phi", 3, 1);
  Expr g = diff_op(at(phi), 0);
  Expr integrand = pow(g, 2) * at(phi);
  EXPECT_TRUE(equals(diff(integrand, g), 2.0 * g * at(phi)));
  EXPECT_TRUE(equals(diff(integrand, at(phi)), pow(g, 2)));
}

TEST_F(DiffTest, DerivativeNodesOpaqueUnderPartialDiff) {
  // variational convention: phi and its spatial derivatives are independent
  auto phi = Field::create("phi", 3, 1);
  Expr g = diff_op(at(phi), 0);
  EXPECT_TRUE(equals(diff(g, at(phi)), num(0)));
  EXPECT_TRUE(equals(diff(dt_op(at(phi)), at(phi)), num(0)));
}

TEST_F(DiffTest, MinMaxSelect) {
  Expr dmin = diff(min_(pow(x, 2), x), x);
  EvalContext ctx;
  ctx.symbols = {{"x", 0.25}};  // x^2 < x here, derivative = 2x
  EXPECT_DOUBLE_EQ(evaluate(dmin, ctx), 0.5);
  ctx.symbols = {{"x", 3.0}};  // x < x^2, derivative = 1
  EXPECT_DOUBLE_EQ(evaluate(dmin, ctx), 1.0);
}

TEST_F(DiffTest, InvalidVariableRejected) {
  EXPECT_THROW(diff(x, x + y), Error);
  EXPECT_THROW(diff(x, num(2)), Error);
}

// Property: symbolic derivative matches central finite difference.
class DiffVsFd : public ::testing::TestWithParam<int> {};

TEST_P(DiffVsFd, RandomExpressions) {
  Expr x = symbol("x"), y = symbol("y");
  unsigned state = static_cast<unsigned>(GetParam()) * 2891336453u + 7;
  auto rnd = [&]() {
    state = state * 1664525u + 1013904223u;
    return (state >> 16) % 1000;
  };
  // random smooth expression built from a safe grammar
  Expr e = num(double(rnd() % 5) - 2.0);
  for (int i = 0; i < 5; ++i) {
    switch (rnd() % 6) {
      case 0: e = e + x * num(double(rnd() % 7) - 3.0); break;
      case 1: e = e * y + num(1.0); break;
      case 2: e = sqrt_(pow(e, 2) + 1.0); break;
      case 3: e = tanh_(e); break;
      case 4: e = e * e + x; break;
      case 5: e = exp_(num(0.1) * e) + y; break;
    }
  }
  const Expr de = diff(e, x);
  const double xv = double(rnd()) / 500.0 - 1.0;
  const double yv = double(rnd()) / 500.0 - 1.0;
  const double h = 1e-6;
  EvalContext ctx;
  ctx.symbols = {{"x", xv + h}, {"y", yv}};
  const double fp = evaluate(e, ctx);
  ctx.symbols["x"] = xv - h;
  const double fm = evaluate(e, ctx);
  ctx.symbols["x"] = xv;
  const double analytic = evaluate(de, ctx);
  const double numeric = (fp - fm) / (2.0 * h);
  EXPECT_NEAR(analytic, numeric, 1e-4 * (1.0 + std::abs(analytic)))
      << to_string(e);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffVsFd, ::testing::Range(0, 40));

}  // namespace
}  // namespace pfc::sym
