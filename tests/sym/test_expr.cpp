// Unit tests for expression construction and canonicalization.
#include <gtest/gtest.h>

#include "pfc/sym/expr.hpp"
#include "pfc/sym/printer.hpp"

namespace pfc::sym {
namespace {

class ExprTest : public ::testing::Test {
 protected:
  Expr x = symbol("x");
  Expr y = symbol("y");
  Expr z = symbol("z");
};

TEST_F(ExprTest, NumberFolding) {
  EXPECT_TRUE(equals(num(2) + num(3), num(5)));
  EXPECT_TRUE(equals(num(2) * num(3), num(6)));
  EXPECT_TRUE(equals(num(2) - num(3), num(-1)));
  EXPECT_TRUE(equals(num(6) / num(3), num(2)));
  EXPECT_TRUE(equals(pow(num(2), 10), num(1024)));
}

TEST_F(ExprTest, AddIdentities) {
  EXPECT_TRUE(equals(x + 0.0, x));
  EXPECT_TRUE(equals(0.0 + x, x));
  EXPECT_TRUE(equals(x - x, num(0)));
  EXPECT_TRUE(equals(add({}), num(0)));
}

TEST_F(ExprTest, MulIdentities) {
  EXPECT_TRUE(equals(x * 1.0, x));
  EXPECT_TRUE(equals(x * 0.0, num(0)));
  EXPECT_TRUE(equals(mul({}), num(1)));
  EXPECT_TRUE(equals(x / x, num(1)));
}

TEST_F(ExprTest, AddCommutesCanonically) {
  EXPECT_TRUE(equals(x + y, y + x));
  EXPECT_TRUE(equals((x + y) + z, x + (y + z)));
  EXPECT_EQ((x + y + z)->hash(), (z + y + x)->hash());
}

TEST_F(ExprTest, MulCommutesCanonically) {
  EXPECT_TRUE(equals(x * y, y * x));
  EXPECT_TRUE(equals((x * y) * z, x * (y * z)));
}

TEST_F(ExprTest, LikeTermCollection) {
  EXPECT_TRUE(equals(x + x, 2.0 * x));
  EXPECT_TRUE(equals(2.0 * x + 3.0 * x, 5.0 * x));
  EXPECT_TRUE(equals(x * y + y * x, 2.0 * (x * y)));
  EXPECT_TRUE(equals(3.0 * x - 3.0 * x, num(0)));
}

TEST_F(ExprTest, PowerCollection) {
  EXPECT_TRUE(equals(x * x, pow(x, 2)));
  EXPECT_TRUE(equals(x * x * x, pow(x, 3)));
  EXPECT_TRUE(equals(pow(x, 2) * pow(x, 3), pow(x, 5)));
  EXPECT_TRUE(equals(pow(x, 2) / x, x));
  EXPECT_TRUE(equals(pow(pow(x, 2), 3), pow(x, 6)));
}

TEST_F(ExprTest, PowIdentities) {
  EXPECT_TRUE(equals(pow(x, 0), num(1)));
  EXPECT_TRUE(equals(pow(x, 1), x));
  EXPECT_TRUE(equals(pow(num(1), x), num(1)));
  EXPECT_TRUE(equals(pow(num(0), 3), num(0)));
}

TEST_F(ExprTest, MulCoefficientInPow) {
  // (2x)^3 must collect with x^3 terms: (2x)^3 = 8 x^3
  EXPECT_TRUE(equals(pow(2.0 * x, 3), 8.0 * pow(x, 3)));
}

TEST_F(ExprTest, DistinctSymbolsWithSameNameDiffer) {
  Expr a = symbol("a");
  Expr b = symbol("a");
  EXPECT_FALSE(equals(a, b));  // identity semantics, like sympy Dummy
  EXPECT_TRUE(equals(a, a));
}

TEST_F(ExprTest, NegationAndSubtraction) {
  EXPECT_TRUE(equals(-(-x), x));
  EXPECT_TRUE(equals(x - y + y, x));
  EXPECT_TRUE(equals(-(x + y), -x - y));
}

TEST_F(ExprTest, FieldRefBasics) {
  auto phi = Field::create("phi", 3, 4);
  Expr p0 = at(phi, 0);
  Expr p1 = at(phi, 1);
  EXPECT_FALSE(equals(p0, p1));
  EXPECT_TRUE(equals(p0, at(phi, 0)));
  Expr east = shifted(p0, 0, 1);
  EXPECT_EQ(east->offset()[0], 1);
  EXPECT_FALSE(equals(east, p0));
  EXPECT_TRUE(equals(shifted(east, 0, -1), p0));
}

TEST_F(ExprTest, FieldRefComponentRangeChecked) {
  auto phi = Field::create("phi", 3, 2);
  EXPECT_THROW(at(phi, 2), Error);
  EXPECT_THROW(at(phi, -1), Error);
}

TEST_F(ExprTest, CallFolding) {
  EXPECT_TRUE(equals(sqrt_(num(4)), num(2)));
  EXPECT_TRUE(equals(min_(num(2), num(3)), num(2)));
  EXPECT_TRUE(equals(select(num(1), x, y), x));
  EXPECT_TRUE(equals(select(num(0), x, y), y));
}

TEST_F(ExprTest, CallArityChecked) {
  EXPECT_THROW(call(Func::Sqrt, {x, y}), Error);
  EXPECT_THROW(call(Func::Min, {x}), Error);
}

TEST_F(ExprTest, DiffOpOfConstantIsZero) {
  EXPECT_TRUE(equals(diff_op(num(3), 0), num(0)));
}

TEST_F(ExprTest, CoordSingletons) {
  EXPECT_TRUE(equals(coord(0), coord(0)));
  EXPECT_FALSE(equals(coord(0), coord(1)));
  EXPECT_EQ(coord(2)->builtin(), Builtin::Coord2);
}

TEST_F(ExprTest, ContainsAndCollect) {
  auto phi = Field::create("phi", 3, 1);
  Expr e = x * at(phi) + sqrt_(y);
  EXPECT_TRUE(contains(e, x));
  EXPECT_TRUE(contains(e, at(phi)));
  EXPECT_FALSE(contains(e, z));
  EXPECT_EQ(field_refs(e).size(), 1u);
  EXPECT_EQ(symbols(e).size(), 2u);
}

TEST_F(ExprTest, RandomNodesByStream) {
  EXPECT_TRUE(equals(random_uniform(0), random_uniform(0)));
  EXPECT_FALSE(equals(random_uniform(0), random_uniform(1)));
}

// Property-style sweep: canonicalization is a ring morphism on random
// integer-coefficient polynomials (checked via structural identities).
class CanonicalizationProperty : public ::testing::TestWithParam<int> {};

TEST_P(CanonicalizationProperty, AdditionAssociativityRandomized) {
  const int seed = GetParam();
  Expr s[3] = {symbol("a"), symbol("b"), symbol("c")};
  // build two differently-associated versions of the same sum
  std::vector<Expr> terms;
  unsigned state = static_cast<unsigned>(seed) * 2654435761u + 1;
  auto rnd = [&]() {
    state = state * 1664525u + 1013904223u;
    return state >> 16;
  };
  for (int i = 0; i < 12; ++i) {
    const double c = static_cast<double>(static_cast<int>(rnd() % 11) - 5);
    terms.push_back(num(c) * s[rnd() % 3] * pow(s[rnd() % 3], 1 + (rnd() % 3)));
  }
  Expr left = num(0);
  for (const auto& t : terms) left = left + t;
  Expr right = num(0);
  for (auto it = terms.rbegin(); it != terms.rend(); ++it) right = *it + right;
  EXPECT_TRUE(equals(left, right))
      << to_string(left) << " vs " << to_string(right);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CanonicalizationProperty,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace pfc::sym
