#include <gtest/gtest.h>

#include "pfc/sym/printer.hpp"

namespace pfc::sym {
namespace {

TEST(PrinterTest, Basics) {
  Expr x = symbol("x"), y = symbol("y");
  EXPECT_EQ(to_string(x), "x");
  EXPECT_EQ(to_string(num(2)), "2.0");
  EXPECT_EQ(to_string(x + y), "x + y");
  EXPECT_EQ(to_string(x - y), "x - y");
  EXPECT_EQ(to_string(2.0 * x), "2.0*x");
}

TEST(PrinterTest, PowUnrolling) {
  Expr x = symbol("x");
  EXPECT_EQ(to_string(pow(x, 2)), "(x*x)");
  EXPECT_EQ(to_string(pow(x, 9)), "pow(x, 9)");
}

TEST(PrinterTest, Division) {
  Expr x = symbol("x"), y = symbol("y");
  EXPECT_EQ(to_string(x / y), "x / y");
  EXPECT_EQ(to_string(1.0 / sqrt_(x)), "1.0 / sqrt(x)");
}

TEST(PrinterTest, Precedence) {
  Expr x = symbol("x"), y = symbol("y"), z = symbol("z");
  EXPECT_EQ(to_string((x + y) * z), "z*(x + y)");
  // canonical term order puts plain symbols before products
  EXPECT_EQ(to_string(x * y + z), "z + x*y");
}

TEST(PrinterTest, FieldRefDefaultForm) {
  auto phi = Field::create("phi", 3, 4);
  EXPECT_EQ(to_string(at(phi, 2)), "phi@2");
  EXPECT_EQ(to_string(shifted(at(phi, 0), 1, -1)), "phi@0[0,-1,0]");
}

TEST(PrinterTest, CustomFieldPrinter) {
  auto phi = Field::create("phi", 3, 1);
  PrintOptions opts;
  opts.field_printer = [](const Expr& fr) {
    return fr->field()->name() + "[idx]";
  };
  EXPECT_EQ(to_string(at(phi) * 2.0, opts), "2.0*phi[idx]");
}

TEST(PrinterTest, DiffAndDt) {
  auto phi = Field::create("phi", 3, 1);
  EXPECT_EQ(to_string(diff_op(at(phi), 1)), "D1(phi)");
  EXPECT_EQ(to_string(dt_op(at(phi))), "dt(phi)");
}

TEST(PrinterTest, Calls) {
  Expr x = symbol("x");
  EXPECT_EQ(to_string(min_(x, num(1))), "fmin(x, 1.0)");
  EXPECT_EQ(to_string(select(greater(x, num(0)), x, num(0))),
            "select(greater(x, 0.0), x, 0.0)");
}

}  // namespace
}  // namespace pfc::sym
