// Tests for expansion and numeric evaluation.
#include <gtest/gtest.h>

#include <cmath>

#include "pfc/sym/expr.hpp"
#include "pfc/sym/printer.hpp"
#include "pfc/sym/simplify.hpp"

namespace pfc::sym {
namespace {

class SimplifyTest : public ::testing::Test {
 protected:
  Expr x = symbol("x");
  Expr y = symbol("y");

  double eval_xy(const Expr& e, double xv, double yv) {
    EvalContext ctx;
    ctx.symbols = {{"x", xv}, {"y", yv}};
    return evaluate(e, ctx);
  }
};

TEST_F(SimplifyTest, ExpandBinomial) {
  Expr e = expand(pow(x + y, 2));
  EXPECT_TRUE(equals(e, pow(x, 2) + 2.0 * x * y + pow(y, 2)))
      << to_string(e);
}

TEST_F(SimplifyTest, ExpandCube) {
  Expr e = expand(pow(x + 1.0, 3));
  EXPECT_TRUE(
      equals(e, pow(x, 3) + 3.0 * pow(x, 2) + 3.0 * x + 1.0))
      << to_string(e);
}

TEST_F(SimplifyTest, ExpandProductOfSums) {
  Expr e = expand((x + y) * (x - y));
  EXPECT_TRUE(equals(e, pow(x, 2) - pow(y, 2))) << to_string(e);
}

TEST_F(SimplifyTest, ExpandCancelsCrossTerms) {
  // (x+y)^2 - (x-y)^2 = 4xy
  Expr e = expand(pow(x + y, 2) - pow(x - y, 2));
  EXPECT_TRUE(equals(e, 4.0 * x * y)) << to_string(e);
}

TEST_F(SimplifyTest, ExpandIsIdempotent) {
  Expr e = expand(pow(x + y, 3) * (x - 2.0 * y));
  EXPECT_TRUE(equals(expand(e), e));
}

TEST_F(SimplifyTest, EvaluateBasics) {
  EXPECT_DOUBLE_EQ(eval_xy(x + 2.0 * y, 1.0, 3.0), 7.0);
  EXPECT_DOUBLE_EQ(eval_xy(pow(x, 3), 2.0, 0.0), 8.0);
  EXPECT_DOUBLE_EQ(eval_xy(sqrt_(x), 9.0, 0.0), 3.0);
  EXPECT_DOUBLE_EQ(eval_xy(rsqrt(x), 4.0, 0.0), 0.5);
  EXPECT_DOUBLE_EQ(eval_xy(select(greater(x, y), x, y), 2.0, 5.0), 5.0);
}

TEST_F(SimplifyTest, EvaluateUnboundSymbolThrows) {
  EvalContext ctx;
  EXPECT_THROW(evaluate(x, ctx), Error);
}

TEST_F(SimplifyTest, EvaluateFieldRefUsesCallback) {
  auto phi = Field::create("phi", 2, 1);
  EvalContext ctx;
  ctx.field_value = [](const Expr& fr) {
    return 10.0 * fr->offset()[0] + fr->offset()[1];
  };
  EXPECT_DOUBLE_EQ(evaluate(shifted(at(phi), 0, 1), ctx), 10.0);
  EXPECT_DOUBLE_EQ(evaluate(shifted(at(phi), 1, -1), ctx), -1.0);
}

TEST_F(SimplifyTest, EvaluateDiffThrows) {
  auto phi = Field::create("phi", 2, 1);
  EvalContext ctx;
  ctx.field_value = [](const Expr&) { return 0.0; };
  EXPECT_THROW(evaluate(diff_op(at(phi), 0), ctx), Error);
}

// Property: expand preserves value on random inputs.
class ExpandProperty : public ::testing::TestWithParam<int> {};

TEST_P(ExpandProperty, ValuePreserved) {
  Expr x = symbol("x"), y = symbol("y");
  unsigned state = static_cast<unsigned>(GetParam()) * 747796405u + 1;
  auto rnd = [&]() {
    state = state * 1664525u + 1013904223u;
    return (state >> 16) % 1000;
  };
  // random nested polynomial
  Expr e = num(1);
  for (int i = 0; i < 4; ++i) {
    Expr base = num(double(rnd() % 7) - 3.0) +
                (rnd() % 2 ? x : y) * num(double(rnd() % 5) - 2.0);
    e = e * pow(base, 1 + int(rnd() % 3)) + (rnd() % 2 ? x : y);
  }
  Expr ex = expand(e);
  EvalContext ctx;
  const double xv = double(rnd()) / 250.0 - 2.0;
  const double yv = double(rnd()) / 250.0 - 2.0;
  ctx.symbols = {{"x", xv}, {"y", yv}};
  const double v0 = evaluate(e, ctx);
  const double v1 = evaluate(ex, ctx);
  EXPECT_NEAR(v0, v1, 1e-8 * (1.0 + std::abs(v0)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExpandProperty, ::testing::Range(0, 30));

}  // namespace
}  // namespace pfc::sym
