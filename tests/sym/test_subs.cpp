#include <gtest/gtest.h>

#include "pfc/sym/printer.hpp"
#include "pfc/sym/subs.hpp"

namespace pfc::sym {
namespace {

class SubsTest : public ::testing::Test {
 protected:
  Expr x = symbol("x");
  Expr y = symbol("y");
  Expr z = symbol("z");
};

TEST_F(SubsTest, SymbolReplacement) {
  Expr e = pow(x, 2) + y;
  EXPECT_TRUE(equals(substitute(e, x, num(3)), num(9) + y));
}

TEST_F(SubsTest, ReplacementRecanonicalizes) {
  Expr e = x + y;
  // x -> -y collapses the sum to zero
  EXPECT_TRUE(equals(substitute(e, x, -y), num(0)));
}

TEST_F(SubsTest, SubtreeReplacement) {
  Expr e = sqrt_(x + y) * (x + y);
  Expr r = substitute(e, x + y, z);
  EXPECT_TRUE(equals(r, sqrt_(z) * z)) << to_string(r);
}

TEST_F(SubsTest, MultipleSimultaneous) {
  Expr e = x * y;
  Expr r = substitute(e, SubsMap{{x, y}, {y, x}});
  // both rewritten against the *original* tree: x*y -> y*x = x*y
  EXPECT_TRUE(equals(r, x * y));
}

TEST_F(SubsTest, FieldRefReplacement) {
  auto phi = Field::create("phi", 3, 1);
  auto mu = Field::create("mu", 3, 1);
  Expr e = pow(at(phi), 2) + at(mu);
  Expr r = substitute(e, at(phi), at(mu));
  EXPECT_TRUE(equals(r, pow(at(mu), 2) + at(mu)));
}

TEST_F(SubsTest, NoMatchReturnsSameTree) {
  Expr e = pow(x, 2) + y;
  Expr r = substitute(e, z, num(1));
  EXPECT_TRUE(equals(r, e));
}

TEST_F(SubsTest, EmptyMapIsIdentity) {
  Expr e = pow(x, 2) + y;
  EXPECT_EQ(substitute(e, SubsMap{}).get(), e.get());
}

TEST_F(SubsTest, ConstantFoldingThroughSubstitution) {
  // the paper's "insert numeric parameter values at compile time" step
  Expr gamma = symbol("gamma");
  Expr e = gamma * pow(x, 2) + gamma * y + gamma;
  Expr r = substitute(e, gamma, num(0.5));
  EXPECT_TRUE(equals(r, 0.5 * pow(x, 2) + 0.5 * y + 0.5));
}

}  // namespace
}  // namespace pfc::sym
