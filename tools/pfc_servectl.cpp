// Control client of pfc_served.
//
//   pfc_servectl --socket=ENDPOINT ping
//   pfc_servectl --socket=ENDPOINT submit [--follow] <jobspec.json>
//   pfc_servectl --socket=ENDPOINT cancel <job-id>
//   pfc_servectl --socket=ENDPOINT list
//   pfc_servectl --socket=ENDPOINT metrics [--text]
//   pfc_servectl --socket=ENDPOINT top [--interval-ms=N] [--iterations=N]
//   pfc_servectl --socket=ENDPOINT shutdown
//   pfc_servectl --socket=ENDPOINT tune <jobspec.json>
//   pfc_servectl --socket=ENDPOINT selftest <jobspec.json>
//
// ENDPOINT is a Unix socket path ("pfc.sock" or "unix:pfc.sock") or a TCP
// endpoint ("tcp:HOST:PORT"). --timeout-seconds bounds connect and every
// read/write of any op; --retries=N retries refused connections with
// exponential backoff + jitter (daemon still starting up).
//
// tune pre-warms the daemon's per-machine tuning cache for a preset: the
// daemon runs the measured autotune search (or reports the cached winner)
// and replies with one "tuned" event, printed to stdout. A later submit of
// the same spec with "tune": "cached" then applies the persisted winner
// with zero measurement runs.
//
// submit streams the job's events to stderr and prints the terminal event
// JSON to stdout; exit 1 unless it is "finished". --follow renders the
// progress events as a human-readable live line instead of raw JSON.
// cancel asks the daemon to stop a queued or running job (ack on stdout).
// metrics prints the daemon's pfc-serve-metrics-v1 snapshot (--text:
// Prometheus exposition). top polls metrics + list and renders a
// one-screen summary per iteration. selftest is the end-to-end round-trip
// the serve_roundtrip ctest runs: submit the same spec twice, run it a
// third time in-process, and verify that (a) the second daemon job
// reports a kernel-cache hit with near-zero external-compiler time, and
// (b) all three runs produce bitwise-identical fields (equal FNV-1a
// checksums).
//
// Exit codes (scripts branch on these):
//   0  success          3  connection refused / daemon not there
//   1  job/selftest     4  timed out (daemon there but unresponsive)
//      failed           5  protocol error (daemon replied garbage)
//   2  usage error
#include <chrono>
#include <cstdio>
#include <ctime>
#include <string>
#include <thread>
#include <vector>

#include "pfc/app/jobspec.hpp"
#include "pfc/serve/server.hpp"
#include "pfc/support/argparse.hpp"

namespace {

using pfc::obs::Json;

std::string read_file(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (!f) throw pfc::Error(std::string("cannot open ") + path);
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return text;
}

const Json& need(const Json& j, const char* key, const std::string& where) {
  const Json* v = j.find(key);
  if (v == nullptr) {
    throw pfc::Error("selftest: " + where + " lacks \"" + key + "\"");
  }
  return *v;
}

/// Pulls the φ/µ checksums out of a "finished" event.
std::pair<std::string, std::string> checksums_of(const Json& ev,
                                                 const std::string& who) {
  const Json& result = need(ev, "result", who);
  return {need(result, "phi_fnv1a64", who).str(),
          need(result, "mu_fnv1a64", who).str()};
}

int selftest(pfc::serve::Client& client, const char* spec_path) {
  const std::string text = read_file(spec_path);
  // Validate locally first — a bad spec should fail here, not at the daemon.
  const pfc::app::JobSpec spec = pfc::app::JobSpec::parse(text);
  std::string err;
  const Json spec_json = Json::parse(text, &err);

  const Json first = client.submit(spec_json);
  const Json second = client.submit(spec_json);
  for (const auto* ev : {&first, &second}) {
    if (need(*ev, "event", "terminal event").str() != "finished") {
      std::fprintf(stderr, "pfc_servectl: selftest job failed: %s\n",
                   ev->dump(-1).c_str());
      return 1;
    }
  }

  int errors = 0;
  const auto [phi1, mu1] = checksums_of(first, "first job");
  const auto [phi2, mu2] = checksums_of(second, "second job");
  if (phi1 != phi2 || mu1 != mu2) {
    std::fprintf(stderr,
                 "pfc_servectl: selftest: repeated job diverged "
                 "(phi %s vs %s, mu %s vs %s)\n",
                 phi1.c_str(), phi2.c_str(), mu1.c_str(), mu2.c_str());
    ++errors;
  }

  // The second identical job must have been served from the kernel cache.
  const Json& compile =
      need(need(second, "result", "second job"), "compile", "second job");
  const Json* cache = compile.find("cache");
  if (cache == nullptr || !need(*cache, "hit", "cache section").boolean()) {
    std::fprintf(stderr,
                 "pfc_servectl: selftest: second identical job did not hit "
                 "the kernel cache\n");
    ++errors;
  }
  const Json* timers = compile.find("timers");
  const Json* jit = timers != nullptr ? timers->find("jit") : nullptr;
  if (jit != nullptr) {
    const double seconds = need(*jit, "seconds", "jit timer").number();
    if (seconds > 0.05) {
      std::fprintf(stderr,
                   "pfc_servectl: selftest: cache-hit compile spent %.3f s "
                   "in the external compiler\n",
                   seconds);
      ++errors;
    }
  }

  // An in-process run of the same spec must match the daemon bitwise.
  const pfc::app::JobResult local = pfc::app::run_job(spec);
  const Json local_json = local.to_json();
  const std::string local_phi = need(local_json, "phi_fnv1a64", "local").str();
  const std::string local_mu = need(local_json, "mu_fnv1a64", "local").str();
  if (local_phi != phi1 || local_mu != mu1) {
    std::fprintf(stderr,
                 "pfc_servectl: selftest: daemon and in-process runs "
                 "diverged (phi %s vs %s, mu %s vs %s)\n",
                 phi1.c_str(), local_phi.c_str(), mu1.c_str(),
                 local_mu.c_str());
    ++errors;
  }

  if (errors == 0) {
    std::printf(
        "pfc_servectl: selftest OK (phi %s, mu %s, second job cache hit)\n",
        phi1.c_str(), mu1.c_str());
  }
  return errors == 0 ? 0 : 1;
}

double num_or(const Json& j, const char* key, double def) {
  const Json* v = j.find(key);
  return v != nullptr && v->is_number() ? v->number() : def;
}

std::string str_or(const Json& j, const char* key, const std::string& def) {
  const Json* v = j.find(key);
  return v != nullptr && v->is_string() ? v->str() : def;
}

/// Sum over every labeled series of one family: "value" for counters and
/// gauges, "count" for histograms. 0 when the family is absent.
double family_total(const Json& snapshot, const char* name) {
  const Json* metrics = snapshot.find("metrics");
  const Json* fam = metrics != nullptr ? metrics->find(name) : nullptr;
  const Json* values = fam != nullptr ? fam->find("values") : nullptr;
  if (values == nullptr) return 0.0;
  double total = 0.0;
  for (const Json& v : values->elements()) {
    total += num_or(v, "value", num_or(v, "count", 0.0));
  }
  return total;
}

/// "2026-08-08 13:45:02" local time from unix seconds (0 → "-").
std::string format_time(double unix_seconds) {
  if (unix_seconds <= 0.0) return "-";
  const std::time_t t = std::time_t(unix_seconds);
  std::tm tm{};
  localtime_r(&t, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%d %H:%M:%S", &tm);
  return buf;
}

/// The human-readable jobs table `list` and `top` render.
void print_jobs_table(const Json& jobs_event, std::FILE* out) {
  const Json* jobs = jobs_event.find("jobs");
  if (jobs == nullptr || jobs->elements().empty()) {
    std::fprintf(out, "no jobs\n");
    return;
  }
  std::fprintf(out, "%4s  %-16s %-9s %-10s %-19s %9s %8s\n", "JOB", "NAME",
               "STATE", "PRESET", "SUBMITTED", "PROGRESS", "MLUP/s");
  for (const Json& j : jobs->elements()) {
    const double fraction = num_or(j, "fraction", 0.0);
    char progress[16];
    std::snprintf(progress, sizeof progress, "%5.1f%%", 100.0 * fraction);
    std::fprintf(out, "%4lld  %-16s %-9s %-10s %-19s %9s %8.2f\n",
                 (long long)(num_or(j, "job", 0.0)),
                 str_or(j, "name", "?").c_str(),
                 str_or(j, "state", "?").c_str(),
                 str_or(j, "preset", "?").c_str(),
                 format_time(num_or(j, "submitted_unix", 0.0)).c_str(),
                 progress, num_or(j, "mlups", 0.0));
    const std::string error = str_or(j, "error", "");
    if (!error.empty()) {
      std::fprintf(out, "      error: %s\n", error.c_str());
    }
  }
}

/// One live line per non-terminal event (submit --follow).
void print_follow_event(const Json& ev) {
  const std::string kind = str_or(ev, "event", "?");
  if (kind == "accepted") {
    std::fprintf(stderr, "accepted: job %lld (%s)\n",
                 (long long)(num_or(ev, "job", -1)),
                 str_or(ev, "name", "?").c_str());
    return;
  }
  if (kind == "started") {
    std::fprintf(stderr, "started: job %lld (queued %.3f s)\n",
                 (long long)(num_or(ev, "job", -1)),
                 num_or(ev, "queued_seconds", 0.0));
    return;
  }
  if (kind == "progress") {
    const double fraction = num_or(ev, "fraction", 0.0);
    char bar[22];
    const int fill = int(fraction * 20.0 + 0.5);
    for (int i = 0; i < 20; ++i) bar[i] = i < fill ? '=' : ' ';
    bar[20] = '\0';
    std::fprintf(stderr,
                 "[%s] %5.1f%%  step %lld/%lld  %.2f MLUP/s  eta %.1f s%s\n",
                 bar, 100.0 * fraction, (long long)(num_or(ev, "step", 0)),
                 (long long)(num_or(ev, "steps_total", 0)),
                 num_or(ev, "mlups", 0.0), num_or(ev, "eta_seconds", 0.0),
                 num_or(ev, "health_violations", 0.0) > 0.0
                     ? "  [health!]"
                     : "");
    return;
  }
  std::fprintf(stderr, "%s\n", ev.dump(-1).c_str());
}

int top(pfc::serve::Client& client, long long interval_ms,
        long long iterations) {
  for (long long i = 0; iterations <= 0 || i < iterations; ++i) {
    if (i > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
    const Json snap = client.metrics();
    const Json jobs = client.list();
    std::printf(
        "queue %lld  inflight %lld  submitted %lld  finished %lld  "
        "failed %lld  cache hit/miss/evict %lld/%lld/%lld\n",
        (long long)family_total(snap, "pfc_queue_depth"),
        (long long)family_total(snap, "pfc_jobs_inflight"),
        (long long)family_total(snap, "pfc_jobs_submitted_total"),
        (long long)family_total(snap, "pfc_jobs_finished_total"),
        (long long)family_total(snap, "pfc_jobs_failed_total"),
        (long long)family_total(snap, "pfc_kernel_cache_hits_total"),
        (long long)family_total(snap, "pfc_kernel_cache_misses_total"),
        (long long)family_total(snap, "pfc_kernel_cache_evictions_total"));
    print_jobs_table(jobs, stdout);
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pfc;
  std::string socket_path;
  bool follow = false, text = false, json = false;
  long long interval_ms = 2000, iterations = 0;
  serve::ClientOptions copts;
  long long retries = 1;
  support::ArgParser args(
      "pfc_servectl",
      "pfc_servectl --socket=ENDPOINT [--timeout-seconds=S] [--retries=N]\n"
      "             ping|shutdown\n"
      "             submit [--follow] <jobspec.json>\n"
      "             cancel <job-id>\n"
      "             list [--json]\n"
      "             metrics [--text]\n"
      "             top [--interval-ms=N] [--iterations=N]\n"
      "             tune <jobspec.json>\n"
      "             selftest <jobspec.json>\n"
      "ENDPOINT: a socket path, unix:PATH, or tcp:HOST:PORT");
  args.value("socket", &socket_path);
  args.seconds("timeout-seconds", &copts.timeout_seconds);
  args.count("retries", &retries);
  args.flag("follow", &follow);
  args.flag("text", &text);
  args.flag("json", &json);
  args.count("interval-ms", &interval_ms);
  args.count("iterations", &iterations);
  const auto pos = args.parse(argc, argv);

  if (socket_path.empty()) args.fail("--socket=ENDPOINT is required");
  if (pos.empty()) args.fail("missing command");
  if (retries < 1) args.fail("--retries must be >= 1");
  copts.retries = int(retries);
  const std::string cmd = pos[0];

  serve::Client client(socket_path, copts);
  try {
    if (cmd == "ping" || cmd == "shutdown") {
      if (pos.size() != 1) args.fail(cmd + " takes no arguments");
      const obs::Json reply =
          cmd == "ping" ? client.ping() : client.shutdown_server();
      std::printf("%s\n", reply.dump(-1).c_str());
      return 0;
    }
    if (cmd == "cancel") {
      if (pos.size() != 2) args.fail("cancel needs exactly one job id");
      const obs::Json reply =
          client.cancel(support::parse_count(pos[1], "job id"));
      std::printf("%s\n", reply.dump(-1).c_str());
      const obs::Json* ev = reply.find("event");
      return ev != nullptr && ev->is_string() && ev->str() == "cancel_ack"
                 ? 0
                 : 1;
    }
    if (cmd == "list") {
      if (pos.size() != 1) args.fail("list takes no arguments");
      const obs::Json reply = client.list();
      if (json) {
        std::printf("%s\n", reply.dump(-1).c_str());
      } else {
        print_jobs_table(reply, stdout);
      }
      return 0;
    }
    if (cmd == "metrics") {
      if (pos.size() != 1) args.fail("metrics takes no arguments");
      if (text) {
        std::fputs(client.metrics_text().c_str(), stdout);
      } else {
        std::printf("%s\n", client.metrics().dump(2).c_str());
      }
      return 0;
    }
    if (cmd == "top") {
      if (pos.size() != 1) args.fail("top takes no arguments");
      if (interval_ms <= 0) args.fail("--interval-ms must be >= 1");
      return top(client, interval_ms, iterations);
    }
    if (cmd == "submit") {
      if (pos.size() != 2) args.fail("submit needs exactly one jobspec file");
      std::string err;
      const obs::Json spec = obs::Json::parse(read_file(pos[1]), &err);
      if (!err.empty()) {
        std::fprintf(stderr, "pfc_servectl: %s: %s\n", pos[1], err.c_str());
        return 1;
      }
      const obs::Json terminal =
          client.submit(spec, [follow](const obs::Json& ev) {
            if (follow) {
              print_follow_event(ev);
            } else {
              std::fprintf(stderr, "%s\n", ev.dump(-1).c_str());
            }
          });
      std::printf("%s\n", terminal.dump(-1).c_str());
      return terminal.find("event")->str() == "finished" ? 0 : 1;
    }
    if (cmd == "tune") {
      if (pos.size() != 2) args.fail("tune needs exactly one jobspec file");
      std::string err;
      const obs::Json spec = obs::Json::parse(read_file(pos[1]), &err);
      if (!err.empty()) {
        std::fprintf(stderr, "pfc_servectl: %s: %s\n", pos[1], err.c_str());
        return 1;
      }
      const obs::Json reply = client.tune(spec);
      std::printf("%s\n", reply.dump(-1).c_str());
      const obs::Json* ev = reply.find("event");
      return ev != nullptr && ev->is_string() && ev->str() == "tuned" ? 0 : 1;
    }
    if (cmd == "selftest") {
      if (pos.size() != 2) {
        args.fail("selftest needs exactly one jobspec file");
      }
      return selftest(client, pos[1]);
    }
  } catch (const serve::ConnectError& e) {
    std::fprintf(stderr, "pfc_servectl: cannot reach daemon: %s\n", e.what());
    return 3;
  } catch (const serve::TimeoutError& e) {
    std::fprintf(stderr, "pfc_servectl: daemon unresponsive: %s\n", e.what());
    return 4;
  } catch (const serve::ProtocolError& e) {
    std::fprintf(stderr, "pfc_servectl: protocol error: %s\n", e.what());
    return 5;
  } catch (const Error& e) {
    std::fprintf(stderr, "pfc_servectl: %s\n", e.what());
    return 1;
  }
  args.fail("unknown command \"" + cmd + "\"");
}
