// Control client of pfc_served.
//
//   pfc_servectl --socket=PATH ping
//   pfc_servectl --socket=PATH submit <jobspec.json>
//   pfc_servectl --socket=PATH list
//   pfc_servectl --socket=PATH shutdown
//   pfc_servectl --socket=PATH selftest <jobspec.json>
//
// submit streams the job's events to stderr and prints the terminal event
// (finished/error) JSON to stdout; exit 1 if the job errored. selftest is
// the end-to-end round-trip the serve_roundtrip ctest runs: submit the
// same spec twice, run it a third time in-process, and verify that (a) the
// second daemon job reports a kernel-cache hit with near-zero external-
// compiler time, and (b) all three runs produce bitwise-identical fields
// (equal FNV-1a checksums).
#include <cstdio>
#include <string>
#include <vector>

#include "pfc/app/jobspec.hpp"
#include "pfc/serve/server.hpp"
#include "pfc/support/argparse.hpp"

namespace {

using pfc::obs::Json;

std::string read_file(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (!f) throw pfc::Error(std::string("cannot open ") + path);
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return text;
}

const Json& need(const Json& j, const char* key, const std::string& where) {
  const Json* v = j.find(key);
  if (v == nullptr) {
    throw pfc::Error("selftest: " + where + " lacks \"" + key + "\"");
  }
  return *v;
}

/// Pulls the φ/µ checksums out of a "finished" event.
std::pair<std::string, std::string> checksums_of(const Json& ev,
                                                 const std::string& who) {
  const Json& result = need(ev, "result", who);
  return {need(result, "phi_fnv1a64", who).str(),
          need(result, "mu_fnv1a64", who).str()};
}

int selftest(pfc::serve::Client& client, const char* spec_path) {
  const std::string text = read_file(spec_path);
  // Validate locally first — a bad spec should fail here, not at the daemon.
  const pfc::app::JobSpec spec = pfc::app::JobSpec::parse(text);
  std::string err;
  const Json spec_json = Json::parse(text, &err);

  const Json first = client.submit(spec_json);
  const Json second = client.submit(spec_json);
  for (const auto* ev : {&first, &second}) {
    if (need(*ev, "event", "terminal event").str() != "finished") {
      std::fprintf(stderr, "pfc_servectl: selftest job failed: %s\n",
                   ev->dump(-1).c_str());
      return 1;
    }
  }

  int errors = 0;
  const auto [phi1, mu1] = checksums_of(first, "first job");
  const auto [phi2, mu2] = checksums_of(second, "second job");
  if (phi1 != phi2 || mu1 != mu2) {
    std::fprintf(stderr,
                 "pfc_servectl: selftest: repeated job diverged "
                 "(phi %s vs %s, mu %s vs %s)\n",
                 phi1.c_str(), phi2.c_str(), mu1.c_str(), mu2.c_str());
    ++errors;
  }

  // The second identical job must have been served from the kernel cache.
  const Json& compile =
      need(need(second, "result", "second job"), "compile", "second job");
  const Json* cache = compile.find("cache");
  if (cache == nullptr || !need(*cache, "hit", "cache section").boolean()) {
    std::fprintf(stderr,
                 "pfc_servectl: selftest: second identical job did not hit "
                 "the kernel cache\n");
    ++errors;
  }
  const Json* timers = compile.find("timers");
  const Json* jit = timers != nullptr ? timers->find("jit") : nullptr;
  if (jit != nullptr) {
    const double seconds = need(*jit, "seconds", "jit timer").number();
    if (seconds > 0.05) {
      std::fprintf(stderr,
                   "pfc_servectl: selftest: cache-hit compile spent %.3f s "
                   "in the external compiler\n",
                   seconds);
      ++errors;
    }
  }

  // An in-process run of the same spec must match the daemon bitwise.
  const pfc::app::JobResult local = pfc::app::run_job(spec);
  const Json local_json = local.to_json();
  const std::string local_phi = need(local_json, "phi_fnv1a64", "local").str();
  const std::string local_mu = need(local_json, "mu_fnv1a64", "local").str();
  if (local_phi != phi1 || local_mu != mu1) {
    std::fprintf(stderr,
                 "pfc_servectl: selftest: daemon and in-process runs "
                 "diverged (phi %s vs %s, mu %s vs %s)\n",
                 phi1.c_str(), local_phi.c_str(), mu1.c_str(),
                 local_mu.c_str());
    ++errors;
  }

  if (errors == 0) {
    std::printf(
        "pfc_servectl: selftest OK (phi %s, mu %s, second job cache hit)\n",
        phi1.c_str(), mu1.c_str());
  }
  return errors == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pfc;
  std::string socket_path;
  support::ArgParser args(
      "pfc_servectl",
      "pfc_servectl --socket=PATH ping|list|shutdown\n"
      "             --socket=PATH submit|selftest <jobspec.json>");
  args.value("socket", &socket_path);
  const auto pos = args.parse(argc, argv);

  if (socket_path.empty()) args.fail("--socket=PATH is required");
  if (pos.empty()) args.fail("missing command");
  const std::string cmd = pos[0];

  serve::Client client(socket_path);
  try {
    if (cmd == "ping" || cmd == "list" || cmd == "shutdown") {
      if (pos.size() != 1) args.fail(cmd + " takes no arguments");
      const obs::Json reply = cmd == "ping"        ? client.ping()
                              : cmd == "list"      ? client.list()
                                                   : client.shutdown_server();
      std::printf("%s\n", reply.dump(-1).c_str());
      return 0;
    }
    if (cmd == "submit") {
      if (pos.size() != 2) args.fail("submit needs exactly one jobspec file");
      std::string err;
      const obs::Json spec = obs::Json::parse(read_file(pos[1]), &err);
      if (!err.empty()) {
        std::fprintf(stderr, "pfc_servectl: %s: %s\n", pos[1], err.c_str());
        return 1;
      }
      std::vector<obs::Json> events;
      const obs::Json terminal = client.submit(spec, &events);
      for (const obs::Json& ev : events) {
        std::fprintf(stderr, "%s\n", ev.dump(-1).c_str());
      }
      std::printf("%s\n", terminal.dump(-1).c_str());
      return terminal.find("event")->str() == "finished" ? 0 : 1;
    }
    if (cmd == "selftest") {
      if (pos.size() != 2) {
        args.fail("selftest needs exactly one jobspec file");
      }
      return selftest(client, pos[1]);
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "pfc_servectl: %s\n", e.what());
    return 1;
  }
  args.fail("unknown command \"" + cmd + "\"");
}
