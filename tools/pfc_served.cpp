// The serve daemon: accepts pfc-jobspec-v1 jobs over a Unix-domain socket
// (and optionally TCP) and runs them concurrently on a worker pool,
// sharing one content-addressed kernel cache across jobs (DESIGN.md §9;
// hardening knobs in §12).
//
//   pfc_served --socket=PATH [--tcp-port=N] [--tcp-host=HOST]
//              [--port-file=PATH] [--workers=N]
//              [--max-queue=N] [--tenant-max-running=N]
//              [--tenant-max-queued=N] [--watchdog-seconds=S]
//              [--io-timeout-seconds=S] [--drain-seconds=S]
//              [--cache-dir=DIR] [--cache-mb=N] [--progress-every=N]
//              [--quiet] [--log-file=PATH]
//              [--log-level=debug|info|warn|error]
//
// Runs in the foreground until a client sends {"op":"shutdown"} or the
// process receives SIGTERM/SIGINT — the signals drain gracefully: stop
// accepting, give in-flight jobs --drain-seconds, cancel the rest, flush,
// exit 0. --tcp-port adds a TCP listener next to the Unix socket (0 picks
// an ephemeral port; --port-file writes the bound port for scripts).
// --max-queue / --tenant-max-* arm admission control, --watchdog-seconds
// the hung-job watchdog, --io-timeout-seconds the per-connection
// slow-loris deadline. --cache-dir enables the kernel cache for every job
// that does not configure its own; --cache-mb bounds it (LRU, 0 =
// unlimited). --log-file switches the structured log from human-readable
// stderr lines to JSON-lines in PATH.
#include <csignal>
#include <cstdio>

#include "pfc/obs/log.hpp"
#include "pfc/serve/server.hpp"
#include "pfc/support/argparse.hpp"

namespace {

volatile std::sig_atomic_t g_signal = 0;

void on_signal(int sig) { g_signal = sig; }

}  // namespace

int main(int argc, char** argv) {
  using namespace pfc;
  serve::ServeOptions opts;
  opts.socket_path.clear();

  support::ArgParser args(
      "pfc_served",
      "pfc_served --socket=PATH [--tcp-port=N] [--tcp-host=HOST]\n"
      "           [--port-file=PATH] [--workers=N] [--max-queue=N]\n"
      "           [--tenant-max-running=N] [--tenant-max-queued=N]\n"
      "           [--watchdog-seconds=S] [--io-timeout-seconds=S]\n"
      "           [--drain-seconds=S] [--fault=PLAN]\n"
      "           [--cache-dir=DIR] [--cache-mb=N]\n"
      "           [--progress-every=N] [--quiet] [--log-file=PATH]\n"
      "           [--log-level=debug|info|warn|error]");
  args.value("socket", &opts.socket_path);
  long long tcp_port = -1;
  bool tcp = false;
  args.on_value("tcp-port", [&](const std::string& v) {
    tcp_port = support::parse_count(v, "--tcp-port");
    tcp = true;
  });
  args.value("tcp-host", &opts.tcp_host);
  std::string port_file;
  args.value("port-file", &port_file);
  int workers = 2;
  args.positive("workers", &workers);
  args.count("max-queue", &opts.admission.max_queue);
  args.count("tenant-max-running", &opts.admission.tenant_max_running);
  args.count("tenant-max-queued", &opts.admission.tenant_max_queued);
  args.seconds("watchdog-seconds", &opts.watchdog_seconds);
  args.seconds("io-timeout-seconds", &opts.io_timeout_seconds);
  args.seconds("drain-seconds", &opts.drain_seconds);
  // Deterministic fault injection for tests (fault.hpp grammar); the
  // PFC_SERVE_FAULT environment variable is the equivalent knob.
  args.value("fault", &opts.fault);
  args.value("cache-dir", &opts.cache.directory);
  long long cache_mb = -1;
  args.count("cache-mb", &cache_mb);
  args.count("progress-every", &opts.progress_every);
  args.flag("quiet", &opts.quiet);
  std::string log_file, log_level = "info";
  args.value("log-file", &log_file);
  args.value("log-level", &log_level);
  const auto pos = args.parse(argc, argv);

  if (!pos.empty()) args.fail("unexpected positional argument");
  if (opts.socket_path.empty()) args.fail("--socket=PATH is required");
  if (tcp && tcp_port > 65535) args.fail("--tcp-port must be <= 65535");
  opts.workers = workers;
  if (tcp) opts.tcp_port = int(tcp_port);
  if (cache_mb >= 0) opts.cache.max_bytes = std::uint64_t(cache_mb) << 20;
  try {
    obs::log::Logger::shared().configure(
        obs::log::level_from_string(log_level), log_file);
  } catch (const Error& e) {
    std::fprintf(stderr, "pfc_served: %s\n", e.what());
    return 1;
  }

  // A client that disconnects mid-stream must never kill the daemon:
  // writes already use MSG_NOSIGNAL, this covers any other stray pipe.
  std::signal(SIGPIPE, SIG_IGN);
  struct sigaction sa {};
  sa.sa_handler = on_signal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);

  serve::JobServer server(std::move(opts));
  try {
    server.start();
  } catch (const Error& e) {
    std::fprintf(stderr, "pfc_served: %s\n", e.what());
    return 1;
  }
  const serve::ServeOptions& o = server.options();
  if (!port_file.empty() && server.tcp_bound_port() > 0) {
    if (std::FILE* f = std::fopen(port_file.c_str(), "w")) {
      std::fprintf(f, "%d\n", server.tcp_bound_port());
      std::fclose(f);
    } else {
      std::fprintf(stderr, "pfc_served: cannot write %s\n",
                   port_file.c_str());
      return 1;
    }
  }
  if (!o.quiet) {
    std::vector<obs::log::Field> fields = {
        {"socket", obs::Json(o.socket_path)},
        {"workers", obs::Json(o.workers)},
        {"cache", obs::Json(o.cache.directory.empty() ? std::string("off")
                                                      : o.cache.directory)}};
    if (server.tcp_bound_port() > 0) {
      fields.push_back({"tcp_port", obs::Json(server.tcp_bound_port())});
    }
    if (o.watchdog_seconds > 0.0) {
      fields.push_back({"watchdog_seconds", obs::Json(o.watchdog_seconds)});
    }
    obs::log::info("pfc_served", "listening", fields);
  }

  // Foreground loop: a shutdown op stops the server from inside; SIGTERM/
  // SIGINT land here and drain gracefully (stop accepting, give in-flight
  // jobs --drain-seconds, cancel the rest, flush, exit 0).
  for (;;) {
    if (server.wait_for(0.2)) {
      server.wait();
      break;
    }
    if (g_signal != 0) {
      if (!o.quiet) {
        obs::log::info("pfc_served", "signal received, draining",
                       {{"signal", obs::Json(int(g_signal))}});
      }
      server.drain_and_stop();
      break;
    }
  }
  if (!o.quiet) obs::log::info("pfc_served", "shut down");
  return 0;
}
