// The serve daemon: accepts pfc-jobspec-v1 jobs over a Unix-domain socket
// and runs them concurrently on a worker pool, sharing one content-
// addressed kernel cache across jobs (DESIGN.md §9).
//
//   pfc_served --socket=PATH [--workers=N] [--cache-dir=DIR]
//              [--cache-mb=N] [--quiet]
//
// Runs in the foreground until a client sends {"op":"shutdown"} (or the
// process is signalled). --cache-dir enables the kernel cache for every
// job that does not configure its own; --cache-mb bounds it (LRU, 0 =
// unlimited).
#include <cstdio>

#include "pfc/serve/server.hpp"
#include "pfc/support/argparse.hpp"

int main(int argc, char** argv) {
  using namespace pfc;
  serve::ServeOptions opts;
  opts.socket_path.clear();

  support::ArgParser args(
      "pfc_served",
      "pfc_served --socket=PATH [--workers=N] [--cache-dir=DIR]\n"
      "           [--cache-mb=N] [--quiet]");
  args.value("socket", &opts.socket_path);
  int workers = 2;
  args.positive("workers", &workers);
  args.value("cache-dir", &opts.cache.directory);
  long long cache_mb = -1;
  args.count("cache-mb", &cache_mb);
  args.flag("quiet", &opts.quiet);
  const auto pos = args.parse(argc, argv);

  if (!pos.empty()) args.fail("unexpected positional argument");
  if (opts.socket_path.empty()) args.fail("--socket=PATH is required");
  opts.workers = workers;
  if (cache_mb >= 0) opts.cache.max_bytes = std::uint64_t(cache_mb) << 20;

  serve::JobServer server(opts);
  try {
    server.start();
  } catch (const Error& e) {
    std::fprintf(stderr, "pfc_served: %s\n", e.what());
    return 1;
  }
  if (!opts.quiet) {
    std::fprintf(stderr,
                 "pfc_served: listening on %s (%d workers, cache %s)\n",
                 opts.socket_path.c_str(), opts.workers,
                 opts.cache.directory.empty() ? "off"
                                              : opts.cache.directory.c_str());
  }
  server.wait();
  if (!opts.quiet) std::fprintf(stderr, "pfc_served: shut down\n");
  return 0;
}
