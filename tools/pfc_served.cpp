// The serve daemon: accepts pfc-jobspec-v1 jobs over a Unix-domain socket
// and runs them concurrently on a worker pool, sharing one content-
// addressed kernel cache across jobs (DESIGN.md §9).
//
//   pfc_served --socket=PATH [--workers=N] [--cache-dir=DIR]
//              [--cache-mb=N] [--progress-every=N] [--quiet]
//              [--log-file=PATH] [--log-level=debug|info|warn|error]
//
// Runs in the foreground until a client sends {"op":"shutdown"} (or the
// process is signalled). --cache-dir enables the kernel cache for every
// job that does not configure its own; --cache-mb bounds it (LRU, 0 =
// unlimited). --progress-every sets the default step cadence of the
// per-job "progress" event stream. --log-file switches the structured
// log from human-readable stderr lines to JSON-lines in PATH.
#include <cstdio>

#include "pfc/obs/log.hpp"
#include "pfc/serve/server.hpp"
#include "pfc/support/argparse.hpp"

int main(int argc, char** argv) {
  using namespace pfc;
  serve::ServeOptions opts;
  opts.socket_path.clear();

  support::ArgParser args(
      "pfc_served",
      "pfc_served --socket=PATH [--workers=N] [--cache-dir=DIR]\n"
      "           [--cache-mb=N] [--progress-every=N] [--quiet]\n"
      "           [--log-file=PATH] [--log-level=debug|info|warn|error]");
  args.value("socket", &opts.socket_path);
  int workers = 2;
  args.positive("workers", &workers);
  args.value("cache-dir", &opts.cache.directory);
  long long cache_mb = -1;
  args.count("cache-mb", &cache_mb);
  args.count("progress-every", &opts.progress_every);
  args.flag("quiet", &opts.quiet);
  std::string log_file, log_level = "info";
  args.value("log-file", &log_file);
  args.value("log-level", &log_level);
  const auto pos = args.parse(argc, argv);

  if (!pos.empty()) args.fail("unexpected positional argument");
  if (opts.socket_path.empty()) args.fail("--socket=PATH is required");
  opts.workers = workers;
  if (cache_mb >= 0) opts.cache.max_bytes = std::uint64_t(cache_mb) << 20;
  try {
    obs::log::Logger::shared().configure(
        obs::log::level_from_string(log_level), log_file);
  } catch (const Error& e) {
    std::fprintf(stderr, "pfc_served: %s\n", e.what());
    return 1;
  }

  serve::JobServer server(opts);
  try {
    server.start();
  } catch (const Error& e) {
    std::fprintf(stderr, "pfc_served: %s\n", e.what());
    return 1;
  }
  if (!opts.quiet) {
    obs::log::info(
        "pfc_served", "listening",
        {{"socket", obs::Json(opts.socket_path)},
         {"workers", obs::Json(opts.workers)},
         {"cache", obs::Json(opts.cache.directory.empty()
                                 ? std::string("off")
                                 : opts.cache.directory)}});
  }
  server.wait();
  if (!opts.quiet) obs::log::info("pfc_served", "shut down");
  return 0;
}
