// Validates a pfc-obs report JSON file against the shared schema
// (pfc-obs-report-v6; stored v5/v4/v3/v2 reports are still accepted),
// including the optional model_accuracy (ECM/netmodel drift), health,
// resilience, overlap (communication-hiding phase split), cache
// (kernel-cache provenance) and threading (execution resources) sections.
// Run by ctest against the file quickstart emits, so every producer that
// funnels through obs::make_report_json stays honest.
//
// With --trace the argument is instead a chrome://tracing trace file (as
// written by obs::TraceRecorder) and the structure of its traceEvents is
// validated, including that kernel and ghost-exchange spans are present.
//
// With --checkpoint the argument is a checkpoint manifest (as written by
// pfc::resilience::write_checkpoint): schema, required keys, the per-array
// entries (shape/offset/count/checksum format, contiguous offsets) and the
// state file's existence and exact size are validated.
//
// With --require-vector-width the report must additionally carry a
// counters/vector_width entry (either top-level or inside an embedded
// "compile" sub-report, as quickstart writes it) whose value is one of the
// supported SIMD widths {1, 2, 4, 8}. This keeps the compile pipeline's
// vectorization decision visible in every report funnel.
//
// With --require-overlap the report must carry an enabled "overlap"
// section (v4): the interior/frontier phase timers of a communication-
// hiding run. Its internal consistency (hidden_fraction in [0, 1], cell
// counts tiling the local lattice) is validated whenever the section is
// present, flag or not.
//
// With --require-cache the compile report (top-level or embedded under
// "compile") must carry the v5 "cache" section: kernel-cache provenance
// (hit flag, 64-hex content key, process-wide hit/miss/evict/byte
// counters). The section is structurally validated whenever present.
//
// With --require-threading the run report must carry the v6 "threading"
// section (pool width >= 1, pinning/dispatch policy, first-touch flag and
// the temporal-blocking decision). The section is structurally validated
// whenever present, flag or not.
//
// With --jobspec the argument is a pfc-jobspec-v1 file; it is parsed with
// the same strict decoder the serve daemon uses (unknown keys and type
// mismatches are errors) and cross-field validated.
//
// With --metrics the argument is a pfc-serve-metrics-v1 snapshot (what
// the daemon's "metrics" request returns): schema, per-family type/help,
// label shapes and histogram consistency (cumulative bucket counts are
// monotone, end at "+Inf" and agree with the total count) are validated.
// Any further arguments name families that must exist with a nonzero
// total — what the serve_roundtrip test pins after running real jobs.
//
// With --prom the argument is a Prometheus text exposition (the daemon's
// "metrics_text" reply): every sample's family must carry # HELP and
// # TYPE lines before its first sample, metric names must match the
// Prometheus charset, counters must end in _total, and histograms must
// expose _bucket/_sum/_count series with a "+Inf" bucket.
//
// Usage: report_check [--require-vector-width] [--require-overlap]
//                     [--require-cache] [--require-threading]
//                     <report.json> [expected-kind]
//        report_check --trace <trace.json>
//        report_check --checkpoint <manifest.json>
//        report_check --jobspec <jobspec.json>
//        report_check --metrics <metrics.json> [required-family...]
//        report_check --prom <metrics.prom>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "pfc/app/jobspec.hpp"
#include "pfc/obs/json.hpp"
#include "pfc/obs/metrics.hpp"
#include "pfc/obs/report.hpp"
#include "pfc/resilience/checkpoint.hpp"

namespace {

int g_errors = 0;

void fail(const std::string& msg) {
  std::fprintf(stderr, "report_check: %s\n", msg.c_str());
  ++g_errors;
}

void check_finite_nonneg(const pfc::obs::Json& v, const std::string& where) {
  if (!v.is_number()) {
    fail(where + ": expected a number");
    return;
  }
  const double x = v.number();
  if (!(x >= 0.0)) fail(where + ": negative or non-finite value");
}

std::string read_file(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (!f) {
    fail(std::string("cannot open ") + path);
    return "";
  }
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return text;
}

void check_finite(const pfc::obs::Json& v, const std::string& where) {
  if (!v.is_number()) {
    fail(where + ": expected a number");
    return;
  }
  const double x = v.number();
  if (!(x - x == 0.0)) fail(where + ": non-finite value");
}

/// --trace mode: structural validation of a chrome://tracing document.
int check_trace(const char* path) {
  const std::string text = read_file(path);
  if (g_errors) return 1;
  std::string err;
  const pfc::obs::Json j = pfc::obs::Json::parse(text, &err);
  if (!err.empty()) {
    fail("parse error: " + err);
    return 1;
  }
  const pfc::obs::Json* events =
      j.is_object() ? j.find("traceEvents") : nullptr;
  if (events == nullptr || !events->is_array()) {
    fail("top level must be an object with a \"traceEvents\" array");
    return 1;
  }
  std::size_t kernel_spans = 0, ghost_spans = 0, slab_spans = 0;
  for (std::size_t i = 0; i < events->elements().size(); ++i) {
    const pfc::obs::Json& e = events->elements()[i];
    const std::string where = "traceEvents[" + std::to_string(i) + ']';
    if (!e.is_object()) {
      fail(where + ": expected an object");
      continue;
    }
    for (const char* key : {"name", "cat", "ph", "ts", "pid", "tid"}) {
      if (!e.find(key)) fail(where + ": missing \"" + key + '"');
    }
    if (g_errors) continue;
    check_finite(*e.find("ts"), where + "/ts");
    const std::string ph =
        e.find("ph")->is_string() ? e.find("ph")->str() : "";
    if (ph != "X" && ph != "i") {
      fail(where + ": ph must be \"X\" or \"i\"");
      continue;
    }
    if (ph == "X") {
      if (!e.find("dur")) {
        fail(where + ": complete event without \"dur\"");
      } else {
        check_finite(*e.find("dur"), where + "/dur");
      }
    }
    const std::string cat =
        e.find("cat")->is_string() ? e.find("cat")->str() : "";
    if (ph == "X" && cat == "kernel") ++kernel_spans;
    if (ph == "X" && cat == "ghost") ++ghost_spans;
    if (ph == "X" && cat == "slab") ++slab_spans;
  }
  if (kernel_spans == 0) fail("no kernel spans (cat \"kernel\", ph \"X\")");
  if (ghost_spans == 0) {
    fail("no ghost-exchange/boundary spans (cat \"ghost\", ph \"X\")");
  }
  if (g_errors) {
    std::fprintf(stderr, "report_check: %s FAILED (%d error%s)\n", path,
                 g_errors, g_errors == 1 ? "" : "s");
    return 1;
  }
  std::printf("report_check: %s OK (%zu events: %zu kernel, %zu ghost, "
              "%zu slab spans)\n",
              path, events->elements().size(), kernel_spans, ghost_spans,
              slab_spans);
  return 0;
}

/// --checkpoint mode: structural validation of a checkpoint manifest plus
/// the existence and exact size of the state file it references.
int check_checkpoint(const char* path) {
  const std::string text = read_file(path);
  if (g_errors) return 1;
  std::string err;
  const pfc::obs::Json j = pfc::obs::Json::parse(text, &err);
  if (!err.empty()) {
    fail("parse error: " + err);
    return 1;
  }
  if (!j.is_object()) {
    fail("top level must be an object");
    return 1;
  }
  for (const char* key : {"schema", "step", "time", "dt", "rng_seed",
                          "layout", "data_file", "arrays"}) {
    if (!j.find(key)) fail(std::string("missing required key \"") + key + '"');
  }
  if (g_errors) return 1;
  if (!j.find("schema")->is_string() ||
      j.find("schema")->str() != pfc::resilience::kCheckpointSchema) {
    fail(std::string("schema must be \"") +
         pfc::resilience::kCheckpointSchema + '"');
  }
  check_finite_nonneg(*j.find("step"), "step");
  check_finite_nonneg(*j.find("time"), "time");
  check_finite_nonneg(*j.find("dt"), "dt");
  if (j.find("dt")->is_number() && !(j.find("dt")->number() > 0.0)) {
    fail("dt must be positive");
  }
  if (!j.find("layout")->is_string() || j.find("layout")->str().empty()) {
    fail("layout must be a non-empty string");
  }
  const pfc::obs::Json& arrays = *j.find("arrays");
  if (!arrays.is_array() || arrays.elements().empty()) {
    fail("arrays must be a non-empty array");
    return 1;
  }
  double expected_offset = 0.0;
  for (std::size_t i = 0; i < arrays.elements().size(); ++i) {
    const pfc::obs::Json& e = arrays.elements()[i];
    const std::string where = "arrays[" + std::to_string(i) + ']';
    if (!e.is_object()) {
      fail(where + ": expected an object");
      continue;
    }
    for (const char* key :
         {"name", "components", "size", "offset", "count", "fnv1a64"}) {
      if (!e.find(key)) fail(where + ": missing \"" + key + '"');
    }
    if (g_errors) continue;
    check_finite_nonneg(*e.find("components"), where + "/components");
    check_finite_nonneg(*e.find("offset"), where + "/offset");
    check_finite_nonneg(*e.find("count"), where + "/count");
    if (e.find("offset")->is_number() &&
        e.find("offset")->number() != expected_offset) {
      fail(where + ": offsets are not contiguous");
    }
    if (e.find("count")->is_number()) {
      expected_offset += e.find("count")->number();
    }
    const pfc::obs::Json* sum = e.find("fnv1a64");
    if (!sum->is_string() || sum->str().rfind("0x", 0) != 0 ||
        sum->str().size() != 18) {
      fail(where + ": fnv1a64 must be an \"0x\" + 16-hex-digit string");
    }
  }
  // the state file must exist next to the manifest and match the manifest's
  // total element count exactly
  std::string dir(path);
  const std::size_t slash = dir.find_last_of('/');
  dir = slash == std::string::npos ? "." : dir.substr(0, slash);
  const std::string data_path = dir + "/" + j.find("data_file")->str();
  std::FILE* f = std::fopen(data_path.c_str(), "rb");
  if (!f) {
    fail("state file missing: " + data_path);
  } else {
    std::fseek(f, 0, SEEK_END);
    const long fsize = std::ftell(f);
    std::fclose(f);
    if (double(fsize) != expected_offset * double(sizeof(double))) {
      fail("state file " + data_path + " has " + std::to_string(fsize) +
           " bytes, manifest expects " +
           std::to_string((long long)(expected_offset * sizeof(double))));
    }
  }
  if (g_errors) {
    std::fprintf(stderr, "report_check: %s FAILED (%d error%s)\n", path,
                 g_errors, g_errors == 1 ? "" : "s");
    return 1;
  }
  std::printf("report_check: %s OK (checkpoint, %zu arrays, %lld doubles)\n",
              path, arrays.elements().size(), (long long)expected_offset);
  return 0;
}

/// --require-vector-width: the SIMD width the compile pipeline chose must
/// be recorded and supported. Quickstart-style run reports embed the
/// CompileReport under "compile"; compile reports carry it top-level.
void check_vector_width(const pfc::obs::Json& j) {
  const pfc::obs::Json* counters = j.find("counters");
  const pfc::obs::Json* vw =
      counters && counters->is_object() ? counters->find("vector_width")
                                        : nullptr;
  if (!vw) {
    if (const pfc::obs::Json* compile = j.find("compile")) {
      const pfc::obs::Json* cc =
          compile->is_object() ? compile->find("counters") : nullptr;
      if (cc && cc->is_object()) vw = cc->find("vector_width");
    }
  }
  if (!vw) {
    fail("counters/vector_width missing (checked top-level and embedded "
         "\"compile\" report)");
    return;
  }
  if (!vw->is_number()) {
    fail("counters/vector_width: expected a number");
    return;
  }
  const double w = vw->number();
  if (w != 1.0 && w != 2.0 && w != 4.0 && w != 8.0) {
    fail("counters/vector_width: " + std::to_string(w) +
         " is not a supported SIMD width (1, 2, 4 or 8)");
  }
}

/// "overlap" section (v4): phase timers and cell counts of the
/// interior/frontier communication-hiding split. `local_cells` (from
/// derived/cells_per_step, 0 if absent) pins the decomposition: interior
/// and frontier must tile the rank's per-step lattice exactly.
void check_overlap(const pfc::obs::Json& o, double local_cells) {
  if (!o.is_object()) {
    fail("overlap must be an object");
    return;
  }
  const pfc::obs::Json* enabled = o.find("enabled");
  if (!enabled || enabled->kind() != pfc::obs::Json::Kind::Bool) {
    fail("overlap/enabled must be a bool");
  }
  for (const char* key :
       {"pack_seconds", "wait_seconds", "interior_seconds",
        "frontier_seconds", "interior_cells", "frontier_cells",
        "hidden_seconds", "hidden_fraction"}) {
    const pfc::obs::Json* v = o.find(key);
    if (!v) {
      fail(std::string("overlap: missing \"") + key + '"');
      continue;
    }
    check_finite_nonneg(*v, std::string("overlap/") + key);
  }
  if (g_errors) return;
  const double hf = o.find("hidden_fraction")->number();
  if (hf > 1.0) fail("overlap/hidden_fraction must be in [0, 1]");
  const double cells = o.find("interior_cells")->number() +
                       o.find("frontier_cells")->number();
  if (local_cells > 0.0 && cells != local_cells) {
    fail("overlap: interior_cells + frontier_cells (" +
         std::to_string((long long)cells) +
         ") must tile the local lattice (derived/cells_per_step = " +
         std::to_string((long long)local_cells) + ')');
  }
}

/// "threading" section (v6): execution resources of a run — pool width,
/// placement policy and the temporal-blocking decision.
void check_threading(const pfc::obs::Json& t) {
  if (!t.is_object()) {
    fail("threading must be an object");
    return;
  }
  for (const char* key : {"threads", "cpus", "cores", "packages",
                          "numa_nodes"}) {
    const pfc::obs::Json* v = t.find(key);
    if (!v) {
      fail(std::string("threading: missing \"") + key + '"');
      continue;
    }
    check_finite_nonneg(*v, std::string("threading/") + key);
  }
  const pfc::obs::Json* pin = t.find("pin_policy");
  if (!pin || !pin->is_string() ||
      (pin->str() != "none" && pin->str() != "compact" &&
       pin->str() != "scatter")) {
    fail("threading/pin_policy must be \"none\", \"compact\" or \"scatter\"");
  }
  const pfc::obs::Json* dispatch = t.find("dispatch");
  if (!dispatch || !dispatch->is_string() ||
      (dispatch->str() != "dynamic" && dispatch->str() != "static")) {
    fail("threading/dispatch must be \"dynamic\" or \"static\"");
  }
  const pfc::obs::Json* ft = t.find("first_touch");
  if (!ft || ft->kind() != pfc::obs::Json::Kind::Bool) {
    fail("threading/first_touch must be a bool");
  }
  const pfc::obs::Json* b = t.find("blocking");
  if (!b || !b->is_object()) {
    fail("threading/blocking must be an object");
    return;
  }
  const pfc::obs::Json* enabled = b->find("enabled");
  if (!enabled || enabled->kind() != pfc::obs::Json::Kind::Bool) {
    fail("threading/blocking/enabled must be a bool");
  }
  for (const char* key :
       {"tile_rows", "lookahead", "fused_stages", "fused_substeps",
        "bytes_per_update_unfused", "bytes_per_update_fused"}) {
    const pfc::obs::Json* v = b->find(key);
    if (!v) {
      fail(std::string("threading/blocking: missing \"") + key + '"');
      continue;
    }
    check_finite_nonneg(*v, std::string("threading/blocking/") + key);
  }
  const pfc::obs::Json* reason = b->find("reason");
  if (!reason || !reason->is_string()) {
    fail("threading/blocking/reason must be a string");
  }
  // an enabled blocking plan must carry a positive tile
  if (!g_errors && enabled->boolean() &&
      b->find("tile_rows")->number() < 1.0) {
    fail("threading/blocking enabled but tile_rows < 1");
  }
}

/// "tuning" section (v7): measured-autotuning decision of a run — mode,
/// cache identity, search cost and the prior-vs-measured ranking.
void check_tuning(const pfc::obs::Json& t) {
  if (!t.is_object()) {
    fail("tuning must be an object");
    return;
  }
  const pfc::obs::Json* enabled = t.find("enabled");
  if (!enabled || enabled->kind() != pfc::obs::Json::Kind::Bool) {
    fail("tuning/enabled must be a bool");
  }
  const pfc::obs::Json* mode = t.find("mode");
  if (!mode || !mode->is_string() ||
      (mode->str() != "cached" && mode->str() != "full")) {
    fail("tuning/mode must be \"cached\" or \"full\"");
  }
  const pfc::obs::Json* hit = t.find("cache_hit");
  if (!hit || hit->kind() != pfc::obs::Json::Kind::Bool) {
    fail("tuning/cache_hit must be a bool");
  }
  const pfc::obs::Json* key = t.find("cache_key");
  if (!key || !key->is_string() || key->str().size() != 64 ||
      key->str().find_first_not_of("0123456789abcdef") != std::string::npos) {
    fail("tuning/cache_key must be a 64-hex-digit content hash");
  }
  const pfc::obs::Json* machine = t.find("machine");
  if (!machine || !machine->is_string() || machine->str().empty()) {
    fail("tuning/machine must be a non-empty string");
  }
  for (const char* k : {"candidates", "measured_runs", "search_seconds",
                        "baseline_mlups", "best_mlups"}) {
    const pfc::obs::Json* v = t.find(k);
    if (!v) {
      fail(std::string("tuning: missing \"") + k + '"');
      continue;
    }
    check_finite_nonneg(*v, std::string("tuning/") + k);
  }
  const pfc::obs::Json* best = t.find("best_config");
  if (!best || !best->is_string() || best->str().empty()) {
    fail("tuning/best_config must be a non-empty string");
  }
  const pfc::obs::Json* ranking = t.find("ranking");
  if (!ranking || !ranking->is_array()) {
    fail("tuning/ranking must be an array");
    return;
  }
  for (std::size_t i = 0; i < ranking->elements().size(); ++i) {
    const pfc::obs::Json& row = ranking->elements()[i];
    const std::string where = "tuning/ranking[" + std::to_string(i) + ']';
    if (!row.is_object()) {
      fail(where + ": expected an object");
      continue;
    }
    const pfc::obs::Json* config = row.find("config");
    if (!config || !config->is_string() || config->str().empty()) {
      fail(where + "/config must be a non-empty string");
    }
    for (const char* k : {"predicted_mlups", "measured_mlups"}) {
      const pfc::obs::Json* v = row.find(k);
      if (!v) {
        fail(where + ": missing \"" + k + '"');
        continue;
      }
      check_finite_nonneg(*v, where + '/' + k);
    }
  }
  if (g_errors) return;
  // Invariants of the search contract: a cache hit performed zero measured
  // runs, a fresh search measured at least the baseline, and the winner is
  // never slower than the baseline (it is measured first and keeps ties).
  if (hit->boolean() && t.find("measured_runs")->number() != 0.0) {
    fail("tuning: cache_hit is true but measured_runs != 0");
  }
  if (!hit->boolean() && t.find("measured_runs")->number() < 1.0) {
    fail("tuning: fresh search must report measured_runs >= 1");
  }
  if (t.find("best_mlups")->number() <
      t.find("baseline_mlups")->number()) {
    fail("tuning: best_mlups below baseline_mlups (the baseline is always "
         "measured, so the winner can never be slower)");
  }
}

/// "cache" section (v5): kernel-cache provenance of a compile report.
void check_cache(const pfc::obs::Json& c) {
  if (!c.is_object()) {
    fail("cache must be an object");
    return;
  }
  const pfc::obs::Json* hit = c.find("hit");
  if (!hit || hit->kind() != pfc::obs::Json::Kind::Bool) {
    fail("cache/hit must be a bool");
  }
  const pfc::obs::Json* key = c.find("key");
  if (!key || !key->is_string() || key->str().size() != 64 ||
      key->str().find_first_not_of("0123456789abcdef") != std::string::npos) {
    fail("cache/key must be a 64-hex-digit content hash");
  }
  for (const char* k : {"hits", "misses", "evictions", "bytes"}) {
    const pfc::obs::Json* v = c.find(k);
    if (!v) {
      fail(std::string("cache: missing \"") + k + '"');
      continue;
    }
    check_finite_nonneg(*v, std::string("cache/") + k);
  }
  // a hit implies the process saw at least one earlier acquire of this key
  if (!g_errors && hit->boolean() && c.find("hits")->number() < 1.0) {
    fail("cache/hit is true but cache/hits is 0");
  }
}

/// One labeled series of a --metrics family. Returns the series' scalar
/// total (value, or count for histograms) so required-family checks can
/// assert nonzero activity.
double check_metric_series(const pfc::obs::Json& v, const std::string& type,
                           const std::string& where) {
  if (!v.is_object()) {
    fail(where + ": expected an object");
    return 0.0;
  }
  const pfc::obs::Json* labels = v.find("labels");
  if (!labels || !labels->is_object()) {
    fail(where + "/labels must be an object");
  } else {
    for (const auto& [k, lv] : labels->items()) {
      if (!lv.is_string()) fail(where + "/labels/" + k + ": expected a string");
    }
  }
  if (type == "counter" || type == "gauge") {
    const pfc::obs::Json* value = v.find("value");
    if (!value) {
      fail(where + ": missing \"value\"");
      return 0.0;
    }
    if (type == "counter") {
      check_finite_nonneg(*value, where + "/value");
    } else {
      check_finite(*value, where + "/value");
    }
    return value->is_number() ? value->number() : 0.0;
  }
  // histogram
  const pfc::obs::Json* count = v.find("count");
  const pfc::obs::Json* sum = v.find("sum");
  const pfc::obs::Json* buckets = v.find("buckets");
  if (!count || !sum || !buckets) {
    fail(where + ": histogram needs \"count\", \"sum\" and \"buckets\"");
    return 0.0;
  }
  check_finite_nonneg(*count, where + "/count");
  check_finite(*sum, where + "/sum");
  if (!buckets->is_array() || buckets->elements().empty()) {
    fail(where + "/buckets must be a non-empty array");
    return 0.0;
  }
  double prev = 0.0;
  bool saw_inf = false;
  for (std::size_t i = 0; i < buckets->elements().size(); ++i) {
    const pfc::obs::Json& b = buckets->elements()[i];
    const std::string bw = where + "/buckets[" + std::to_string(i) + ']';
    if (!b.is_object()) {
      fail(bw + ": expected an object");
      continue;
    }
    const pfc::obs::Json* le = b.find("le");
    const pfc::obs::Json* bc = b.find("count");
    if (!le || !bc) {
      fail(bw + ": needs \"le\" and \"count\"");
      continue;
    }
    if (le->is_string()) {
      if (le->str() != "+Inf") {
        fail(bw + "/le: string edge must be \"+Inf\"");
      } else if (i + 1 != buckets->elements().size()) {
        fail(bw + "/le: \"+Inf\" must be the last bucket");
      } else {
        saw_inf = true;
      }
    } else {
      check_finite_nonneg(*le, bw + "/le");
    }
    check_finite_nonneg(*bc, bw + "/count");
    if (bc->is_number()) {
      if (bc->number() < prev) {
        fail(bw + "/count: cumulative counts must be nondecreasing");
      }
      prev = bc->number();
    }
  }
  if (!saw_inf) fail(where + "/buckets: missing the \"+Inf\" bucket");
  if (count->is_number() && prev != count->number()) {
    fail(where + ": +Inf bucket count (" +
         std::to_string((long long)prev) + ") must equal count (" +
         std::to_string((long long)count->number()) + ')');
  }
  return count->is_number() ? count->number() : 0.0;
}

/// --metrics mode: structural validation of a pfc-serve-metrics-v1
/// snapshot; `required` families must exist with a nonzero total.
int check_metrics(const char* path, const std::vector<std::string>& required) {
  const std::string text = read_file(path);
  if (g_errors) return 1;
  std::string err;
  const pfc::obs::Json j = pfc::obs::Json::parse(text, &err);
  if (!err.empty()) {
    fail("parse error: " + err);
    return 1;
  }
  if (!j.is_object()) {
    fail("top level must be an object");
    return 1;
  }
  const pfc::obs::Json* schema = j.find("schema");
  if (!schema || !schema->is_string() ||
      schema->str() != pfc::obs::kMetricsSchema) {
    fail(std::string("schema must be \"") + pfc::obs::kMetricsSchema + '"');
  }
  const pfc::obs::Json* metrics = j.find("metrics");
  if (!metrics || !metrics->is_object()) {
    fail("\"metrics\" must be an object");
    return 1;
  }
  // The serve daemon's families have pinned kinds: a registry refactor
  // must not silently demote pfc_jobs_rejected_total to a gauge or grow
  // pfc_tenant_inflight series without their tenant label.
  static const std::map<std::string, std::string> kServeKinds = {
      {"pfc_jobs_submitted_total", "counter"},
      {"pfc_jobs_finished_total", "counter"},
      {"pfc_jobs_failed_total", "counter"},
      {"pfc_jobs_rejected_total", "counter"},
      {"pfc_jobs_cancelled_total", "counter"},
      {"pfc_jobs_deadline_exceeded_total", "counter"},
      {"pfc_jobs_watchdog_killed_total", "counter"},
      {"pfc_queue_depth", "gauge"},
      {"pfc_jobs_inflight", "gauge"},
      {"pfc_tenant_inflight", "gauge"},
      {"pfc_job_duration_seconds", "histogram"},
      {"pfc_job_queue_seconds", "histogram"},
  };
  std::map<std::string, double> totals;
  for (const auto& [name, fam] : metrics->items()) {
    const std::string where = "metrics/" + name;
    if (!pfc::obs::valid_metric_name(name)) {
      fail(where + ": invalid metric name");
    }
    if (!fam.is_object()) {
      fail(where + ": expected an object");
      continue;
    }
    const pfc::obs::Json* type = fam.find("type");
    const pfc::obs::Json* help = fam.find("help");
    const pfc::obs::Json* values = fam.find("values");
    if (!type || !type->is_string() ||
        (type->str() != "counter" && type->str() != "gauge" &&
         type->str() != "histogram")) {
      fail(where + "/type must be \"counter\", \"gauge\" or \"histogram\"");
      continue;
    }
    if (!help || !help->is_string() || help->str().empty()) {
      fail(where + "/help must be a non-empty string");
    }
    const auto pinned = kServeKinds.find(name);
    if (pinned != kServeKinds.end() && type->str() != pinned->second) {
      fail(where + "/type must be \"" + pinned->second +
           "\" (serve-family kind is pinned), got \"" + type->str() + '"');
    }
    if (!values || !values->is_array() || values->elements().empty()) {
      fail(where + "/values must be a non-empty array");
      continue;
    }
    double total = 0.0;
    for (std::size_t i = 0; i < values->elements().size(); ++i) {
      const std::string vw = where + "/values[" + std::to_string(i) + ']';
      total += check_metric_series(values->elements()[i], type->str(), vw);
      if (name == "pfc_tenant_inflight") {
        const pfc::obs::Json* labels = values->elements()[i].find("labels");
        if (!labels || labels->find("tenant") == nullptr) {
          fail(vw + ": pfc_tenant_inflight series needs a \"tenant\" label");
        }
      }
    }
    totals[name] = total;
  }
  for (const std::string& name : required) {
    auto it = totals.find(name);
    if (it == totals.end()) {
      fail("required family \"" + name + "\" is missing");
    } else if (!(it->second > 0.0)) {
      fail("required family \"" + name + "\" has a zero total");
    }
  }
  if (g_errors) {
    std::fprintf(stderr, "report_check: %s FAILED (%d error%s)\n", path,
                 g_errors, g_errors == 1 ? "" : "s");
    return 1;
  }
  std::printf("report_check: %s OK (metrics, %zu families, %zu required)\n",
              path, metrics->items().size(), required.size());
  return 0;
}

/// --prom mode: lint of the Prometheus text exposition.
int check_prom(const char* path) {
  const std::string text = read_file(path);
  if (g_errors) return 1;
  std::map<std::string, std::string> types;  // family -> counter|gauge|...
  std::set<std::string> helped;
  std::set<std::string> sampled;  // families with >= 1 sample line
  std::map<std::string, std::set<std::string>> histogram_series;
  std::map<std::string, bool> histogram_inf;
  std::size_t samples = 0;
  std::size_t lineno = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find('\n', start);
    const std::string line =
        text.substr(start, end == std::string::npos ? end : end - start);
    start = end == std::string::npos ? text.size() + 1 : end + 1;
    ++lineno;
    if (line.empty()) continue;
    const std::string where = "line " + std::to_string(lineno);
    if (line[0] == '#') {
      // "# HELP name text" / "# TYPE name counter|gauge|histogram"
      std::size_t p = line.find_first_not_of(' ', 1);
      if (p == std::string::npos) continue;
      const std::size_t kw_end = line.find(' ', p);
      const std::string kw =
          line.substr(p, kw_end == std::string::npos ? kw_end : kw_end - p);
      if (kw != "HELP" && kw != "TYPE") continue;  // other comments are legal
      if (kw_end == std::string::npos) {
        fail(where + ": # " + kw + " without a metric name");
        continue;
      }
      p = line.find_first_not_of(' ', kw_end);
      const std::size_t name_end = line.find(' ', p);
      const std::string name = line.substr(
          p, name_end == std::string::npos ? name_end : name_end - p);
      if (!pfc::obs::valid_metric_name(name)) {
        fail(where + ": invalid metric name \"" + name + '"');
        continue;
      }
      if (sampled.count(name) != 0) {
        fail(where + ": # " + kw + " for \"" + name +
             "\" after its first sample");
      }
      if (kw == "HELP") {
        if (name_end == std::string::npos ||
            line.find_first_not_of(' ', name_end) == std::string::npos) {
          fail(where + ": # HELP " + name + " has no text");
        }
        if (!helped.insert(name).second) {
          fail(where + ": duplicate # HELP for \"" + name + '"');
        }
      } else {
        const std::string type =
            name_end == std::string::npos
                ? ""
                : line.substr(line.find_first_not_of(' ', name_end));
        if (type != "counter" && type != "gauge" && type != "histogram") {
          fail(where + ": # TYPE " + name + " has unknown type \"" + type +
               '"');
        }
        if (!types.emplace(name, type).second) {
          fail(where + ": duplicate # TYPE for \"" + name + '"');
        }
      }
      continue;
    }
    // sample line: name[{labels}] value
    const std::size_t name_end = line.find_first_of("{ ");
    const std::string series =
        line.substr(0, name_end == std::string::npos ? name_end : name_end);
    if (!pfc::obs::valid_metric_name(series)) {
      fail(where + ": invalid metric name \"" + series + '"');
      continue;
    }
    // resolve the family: histogram series drop a _bucket/_sum/_count
    // suffix, everything else is its own family
    std::string family = series;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::size_t len = std::strlen(suffix);
      if (series.size() > len &&
          series.compare(series.size() - len, len, suffix) == 0) {
        const std::string base = series.substr(0, series.size() - len);
        auto it = types.find(base);
        if (it != types.end() && it->second == "histogram") {
          family = base;
          histogram_series[base].insert(suffix);
          break;
        }
      }
    }
    auto type_it = types.find(family);
    if (type_it == types.end()) {
      fail(where + ": sample \"" + series + "\" has no preceding # TYPE");
      continue;
    }
    if (helped.count(family) == 0) {
      fail(where + ": sample \"" + series + "\" has no preceding # HELP");
    }
    if (type_it->second == "counter" &&
        (series.size() < 6 ||
         series.compare(series.size() - 6, 6, "_total") != 0)) {
      fail(where + ": counter \"" + series + "\" must end in _total");
    }
    if (type_it->second == "histogram" && family == series) {
      fail(where + ": histogram \"" + family +
           "\" sample must be a _bucket/_sum/_count series");
    }
    if (family != series && series.size() > 7 &&
        series.compare(series.size() - 7, 7, "_bucket") == 0 &&
        line.find("le=\"+Inf\"") != std::string::npos) {
      histogram_inf[family] = true;
    }
    // the value is the last space-separated token
    const std::size_t sp = line.find_last_of(' ');
    if (sp == std::string::npos) {
      fail(where + ": sample without a value");
    } else {
      char* endp = nullptr;
      const std::string value = line.substr(sp + 1);
      std::strtod(value.c_str(), &endp);
      if (endp == value.c_str() || *endp != '\0') {
        fail(where + ": unparseable sample value \"" + value + '"');
      }
    }
    sampled.insert(family);
    ++samples;
  }
  for (const auto& [name, type] : types) {
    if (helped.count(name) == 0) {
      fail("# TYPE " + name + " without a # HELP line");
    }
    if (type != "histogram") continue;
    const auto& series = histogram_series[name];
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      if (series.count(suffix) == 0) {
        fail("histogram \"" + name + "\" has no " + suffix + " series");
      }
    }
    if (!histogram_inf[name]) {
      fail("histogram \"" + name + "\" has no le=\"+Inf\" bucket");
    }
  }
  if (types.empty()) fail("no # TYPE lines (empty exposition)");
  if (g_errors) {
    std::fprintf(stderr, "report_check: %s FAILED (%d error%s)\n", path,
                 g_errors, g_errors == 1 ? "" : "s");
    return 1;
  }
  std::printf("report_check: %s OK (prometheus, %zu families, %zu samples)\n",
              path, types.size(), samples);
  return 0;
}

/// --jobspec mode: strict decode + cross-field validation of a job spec.
int check_jobspec(const char* path) {
  const std::string text = read_file(path);
  if (g_errors) return 1;
  try {
    const pfc::app::JobSpec spec = pfc::app::JobSpec::parse(text);
    std::printf("report_check: %s OK (jobspec \"%s\", preset %s, %lld "
                "steps, mode %s)\n",
                path, spec.name.c_str(), spec.model.preset.c_str(),
                spec.steps, spec.mode.c_str());
    return 0;
  } catch (const pfc::Error& e) {
    fail(e.what());
    std::fprintf(stderr, "report_check: %s FAILED (1 error)\n", path);
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "--trace") == 0) {
    return check_trace(argv[2]);
  }
  if (argc == 3 && std::strcmp(argv[1], "--checkpoint") == 0) {
    return check_checkpoint(argv[2]);
  }
  if (argc == 3 && std::strcmp(argv[1], "--jobspec") == 0) {
    return check_jobspec(argv[2]);
  }
  if (argc >= 3 && std::strcmp(argv[1], "--metrics") == 0) {
    std::vector<std::string> required;
    for (int i = 3; i < argc; ++i) required.emplace_back(argv[i]);
    return check_metrics(argv[2], required);
  }
  if (argc == 3 && std::strcmp(argv[1], "--prom") == 0) {
    return check_prom(argv[2]);
  }
  bool require_vector_width = false;
  bool require_overlap = false;
  bool require_cache = false;
  bool require_threading = false;
  bool require_tuning = false;
  while (argc >= 2 && std::strncmp(argv[1], "--", 2) == 0) {
    if (std::strcmp(argv[1], "--require-vector-width") == 0) {
      require_vector_width = true;
    } else if (std::strcmp(argv[1], "--require-overlap") == 0) {
      require_overlap = true;
    } else if (std::strcmp(argv[1], "--require-cache") == 0) {
      require_cache = true;
    } else if (std::strcmp(argv[1], "--require-threading") == 0) {
      require_threading = true;
    } else if (std::strcmp(argv[1], "--require-tuning") == 0) {
      require_tuning = true;
    } else {
      std::fprintf(stderr, "report_check: unknown flag %s\n", argv[1]);
      return 2;
    }
    --argc;
    ++argv;
  }
  if (argc < 2 || argc > 3) {
    std::fprintf(stderr,
                 "usage: report_check [--require-vector-width] "
                 "[--require-overlap] [--require-cache] "
                 "[--require-threading] [--require-tuning] "
                 "<report.json> [kind]\n"
                 "       report_check --trace <trace.json>\n"
                 "       report_check --checkpoint <manifest.json>\n"
                 "       report_check --jobspec <jobspec.json>\n"
                 "       report_check --metrics <metrics.json> "
                 "[required-family...]\n"
                 "       report_check --prom <metrics.prom>\n");
    return 2;
  }
  const std::string text = read_file(argv[1]);
  if (g_errors) return 1;

  std::string err;
  const pfc::obs::Json j = pfc::obs::Json::parse(text, &err);
  if (!err.empty()) {
    fail("parse error: " + err);
    return 1;
  }
  if (!j.is_object()) fail("top level must be an object");

  // the six required sections
  for (const char* key :
       {"schema", "kind", "name", "timers", "counters", "derived"}) {
    if (!j.find(key)) fail(std::string("missing required key \"") + key + '"');
  }
  if (g_errors) return 1;

  const bool is_v7 = j.find("schema")->is_string() &&
                     j.find("schema")->str() == pfc::obs::kReportSchema;
  const bool is_v6 = j.find("schema")->is_string() &&
                     j.find("schema")->str() == pfc::obs::kReportSchemaV6;
  const bool is_v5 = j.find("schema")->is_string() &&
                     j.find("schema")->str() == pfc::obs::kReportSchemaV5;
  const bool is_v4 = j.find("schema")->is_string() &&
                     j.find("schema")->str() == pfc::obs::kReportSchemaV4;
  const bool is_v3 = j.find("schema")->is_string() &&
                     j.find("schema")->str() == pfc::obs::kReportSchemaV3;
  const bool is_v2 = j.find("schema")->is_string() &&
                     j.find("schema")->str() == pfc::obs::kReportSchemaV2;
  if (!is_v7 && !is_v6 && !is_v5 && !is_v4 && !is_v3 && !is_v2) {
    fail(std::string("schema must be \"") + pfc::obs::kReportSchema +
         "\" (or the stored \"" + pfc::obs::kReportSchemaV6 + "\" / \"" +
         pfc::obs::kReportSchemaV5 + "\" / \"" + pfc::obs::kReportSchemaV4 +
         "\" / \"" + pfc::obs::kReportSchemaV3 + "\" / \"" +
         pfc::obs::kReportSchemaV2 + "\")");
  }
  const pfc::obs::Json& kind = *j.find("kind");
  if (!kind.is_string() || (kind.str() != "run" && kind.str() != "compile" &&
                            kind.str() != "bench")) {
    fail("kind must be \"run\", \"compile\" or \"bench\"");
  }
  if (argc == 3 && kind.is_string() && kind.str() != argv[2]) {
    fail(std::string("expected kind \"") + argv[2] + "\", got \"" +
         kind.str() + '"');
  }
  if (!j.find("name")->is_string() || j.find("name")->str().empty()) {
    fail("name must be a non-empty string");
  }

  const pfc::obs::Json& timers = *j.find("timers");
  if (!timers.is_object()) {
    fail("timers must be an object");
  } else {
    for (const auto& [path, t] : timers.items()) {
      if (!t.is_object() || !t.find("seconds") || !t.find("count")) {
        fail("timers/" + path + ": expected {\"seconds\", \"count\"}");
        continue;
      }
      check_finite_nonneg(*t.find("seconds"), "timers/" + path + "/seconds");
      check_finite_nonneg(*t.find("count"), "timers/" + path + "/count");
    }
  }

  const pfc::obs::Json& counters = *j.find("counters");
  if (!counters.is_object()) {
    fail("counters must be an object");
  } else {
    for (const auto& [path, v] : counters.items()) {
      check_finite_nonneg(v, "counters/" + path);
    }
  }

  const pfc::obs::Json& derived = *j.find("derived");
  if (!derived.is_object()) {
    fail("derived must be an object");
  } else {
    for (const auto& [stat, v] : derived.items()) {
      check_finite_nonneg(v, "derived/" + stat);
    }
  }

  // v2 sections (optional: run reports always carry health; compile/bench
  // reports may omit both)
  if (const pfc::obs::Json* ma = j.find("model_accuracy")) {
    if (!ma->is_object()) {
      fail("model_accuracy must be an object");
    } else {
      for (const auto& [target, a] : ma->items()) {
        const std::string where = "model_accuracy/" + target;
        if (!a.is_object()) {
          fail(where + ": expected an object");
          continue;
        }
        for (const char* key :
             {"predicted_seconds", "measured_seconds", "ratio"}) {
          const pfc::obs::Json* v = a.find(key);
          if (!v) {
            fail(where + ": missing \"" + key + '"');
            continue;
          }
          check_finite_nonneg(*v, where + '/' + key);
        }
      }
    }
  }
  if (const pfc::obs::Json* h = j.find("health")) {
    if (!h->is_object()) {
      fail("health must be an object");
    } else {
      const pfc::obs::Json* policy = h->find("policy");
      if (!policy || !policy->is_string() ||
          (policy->str() != "ignore" && policy->str() != "warn" &&
           policy->str() != "throw" && policy->str() != "recover")) {
        fail("health/policy must be \"ignore\", \"warn\", \"throw\" or "
             "\"recover\"");
      }
      for (const auto& [stat, v] : h->items()) {
        if (stat == "policy") continue;
        check_finite_nonneg(v, "health/" + stat);
      }
    }
  }

  // v3 sections: run reports carry "resilience", compile reports carry the
  // backend tier of the degradation chain
  if (const pfc::obs::Json* r = j.find("resilience")) {
    if (!r->is_object()) {
      fail("resilience must be an object");
    } else {
      for (const char* key :
           {"checkpoints", "checkpoint_files", "rollbacks", "dt_shrinks",
            "faults_injected", "dt_current"}) {
        const pfc::obs::Json* v = r->find(key);
        if (!v) {
          fail(std::string("resilience: missing \"") + key + '"');
          continue;
        }
        check_finite_nonneg(*v, std::string("resilience/") + key);
      }
      const pfc::obs::Json* restarted = r->find("restarted");
      if (!restarted ||
          restarted->kind() != pfc::obs::Json::Kind::Bool) {
        fail("resilience/restarted must be a bool");
      }
    }
  } else if ((is_v7 || is_v6 || is_v5 || is_v4 || is_v3) && kind.is_string() &&
             kind.str() == "run") {
    fail("v3+ run reports must carry a \"resilience\" section");
  }
  if (const pfc::obs::Json* tier = j.find("backend_tier")) {
    if (!tier->is_string() ||
        (tier->str() != "vector" && tier->str() != "scalar" &&
         tier->str() != "interpreter")) {
      fail("backend_tier must be \"vector\", \"scalar\" or \"interpreter\"");
    }
    const pfc::obs::Json* attempts = j.find("fallback_attempts");
    if (!attempts) {
      fail("backend_tier present but \"fallback_attempts\" missing");
    } else {
      check_finite_nonneg(*attempts, "fallback_attempts");
    }
  } else if ((is_v7 || is_v6 || is_v5 || is_v4 || is_v3) && kind.is_string() &&
             kind.str() == "compile") {
    fail("v3+ compile reports must carry \"backend_tier\"");
  }

  // v4 section: overlap phase split of a communication-hiding run. Older
  // schemas never wrote it, so its presence pins the report to v4.
  const pfc::obs::Json* overlap = j.find("overlap");
  if (overlap != nullptr) {
    if (!is_v7 && !is_v6 && !is_v5 && !is_v4) {
      fail("\"overlap\" section requires the v4 schema");
    }
    const pfc::obs::Json* cps =
        derived.is_object() ? derived.find("cells_per_step") : nullptr;
    check_overlap(*overlap,
                  cps != nullptr && cps->is_number() ? cps->number() : 0.0);
  } else if (require_overlap) {
    fail("--require-overlap: report carries no \"overlap\" section");
  }
  if (require_overlap && overlap != nullptr) {
    const pfc::obs::Json* enabled = overlap->find("enabled");
    if (enabled == nullptr ||
        enabled->kind() != pfc::obs::Json::Kind::Bool ||
        !enabled->boolean()) {
      fail("--require-overlap: overlap/enabled must be true");
    }
  }

  if (require_vector_width) check_vector_width(j);

  // v5 section: kernel-cache provenance of a compile report. Run reports
  // embed their compile report under "compile" (as quickstart writes it).
  const pfc::obs::Json* cache = j.find("cache");
  if (cache == nullptr) {
    if (const pfc::obs::Json* compile = j.find("compile")) {
      if (compile->is_object()) cache = compile->find("cache");
    }
  }
  if (cache != nullptr) {
    if (!is_v7 && !is_v6 && !is_v5) {
      fail("\"cache\" section requires the v5 schema");
    }
    check_cache(*cache);
  } else if (require_cache) {
    fail("--require-cache: report carries no \"cache\" section (checked "
         "top-level and embedded \"compile\" report)");
  }

  // v6 section: execution resources of a run (pool width, pinning policy,
  // first-touch placement, temporal-blocking decision). Mandatory on v6
  // run reports; compile/bench reports never carry it.
  const pfc::obs::Json* threading = j.find("threading");
  if (threading != nullptr) {
    if (!is_v7 && !is_v6) {
      fail("\"threading\" section requires the v6 schema");
    }
    check_threading(*threading);
  } else if ((is_v7 || is_v6) && kind.is_string() && kind.str() == "run") {
    fail("v6+ run reports must carry a \"threading\" section");
  }
  if (require_threading) {
    if (threading == nullptr) {
      fail("--require-threading: report carries no \"threading\" section");
    } else if (!g_errors) {
      const pfc::obs::Json* threads = threading->find("threads");
      if (threads == nullptr || !threads->is_number() ||
          threads->number() < 1.0) {
        fail("--require-threading: threading/threads must be >= 1");
      }
    }
  }

  // v7 section: the measured-autotuning decision. Optional (runs with
  // tune = off never write it); its presence pins the report to v7.
  const pfc::obs::Json* tuning = j.find("tuning");
  if (tuning != nullptr) {
    if (!is_v7) fail("\"tuning\" section requires the v7 schema");
    check_tuning(*tuning);
  } else if (require_tuning) {
    fail("--require-tuning: report carries no \"tuning\" section");
  }
  if (require_tuning && tuning != nullptr && !g_errors) {
    const pfc::obs::Json* enabled = tuning->find("enabled");
    if (enabled == nullptr ||
        enabled->kind() != pfc::obs::Json::Kind::Bool ||
        !enabled->boolean()) {
      fail("--require-tuning: tuning/enabled must be true");
    }
  }

  if (g_errors) {
    std::fprintf(stderr, "report_check: %s FAILED (%d error%s)\n", argv[1],
                 g_errors, g_errors == 1 ? "" : "s");
    return 1;
  }
  std::printf("report_check: %s OK (kind=%s, %zu timers, %zu counters)\n",
              argv[1], kind.str().c_str(), timers.items().size(),
              counters.items().size());
  return 0;
}
