// Validates a pfc-obs report JSON file against the shared schema
// (pfc-obs-report-v1). Run by ctest against the file quickstart emits, so
// every producer that funnels through obs::make_report_json stays honest.
//
// Usage: report_check <report.json> [expected-kind]
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "pfc/obs/json.hpp"
#include "pfc/obs/report.hpp"

namespace {

int g_errors = 0;

void fail(const std::string& msg) {
  std::fprintf(stderr, "report_check: %s\n", msg.c_str());
  ++g_errors;
}

void check_finite_nonneg(const pfc::obs::Json& v, const std::string& where) {
  if (!v.is_number()) {
    fail(where + ": expected a number");
    return;
  }
  const double x = v.number();
  if (!(x >= 0.0)) fail(where + ": negative or non-finite value");
}

std::string read_file(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (!f) {
    fail(std::string("cannot open ") + path);
    return "";
  }
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return text;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || argc > 3) {
    std::fprintf(stderr, "usage: report_check <report.json> [kind]\n");
    return 2;
  }
  const std::string text = read_file(argv[1]);
  if (g_errors) return 1;

  std::string err;
  const pfc::obs::Json j = pfc::obs::Json::parse(text, &err);
  if (!err.empty()) {
    fail("parse error: " + err);
    return 1;
  }
  if (!j.is_object()) fail("top level must be an object");

  // the six required sections
  for (const char* key :
       {"schema", "kind", "name", "timers", "counters", "derived"}) {
    if (!j.find(key)) fail(std::string("missing required key \"") + key + '"');
  }
  if (g_errors) return 1;

  if (!j.find("schema")->is_string() ||
      j.find("schema")->str() != pfc::obs::kReportSchema) {
    fail(std::string("schema must be \"") + pfc::obs::kReportSchema + '"');
  }
  const pfc::obs::Json& kind = *j.find("kind");
  if (!kind.is_string() || (kind.str() != "run" && kind.str() != "compile" &&
                            kind.str() != "bench")) {
    fail("kind must be \"run\", \"compile\" or \"bench\"");
  }
  if (argc == 3 && kind.is_string() && kind.str() != argv[2]) {
    fail(std::string("expected kind \"") + argv[2] + "\", got \"" +
         kind.str() + '"');
  }
  if (!j.find("name")->is_string() || j.find("name")->str().empty()) {
    fail("name must be a non-empty string");
  }

  const pfc::obs::Json& timers = *j.find("timers");
  if (!timers.is_object()) {
    fail("timers must be an object");
  } else {
    for (const auto& [path, t] : timers.items()) {
      if (!t.is_object() || !t.find("seconds") || !t.find("count")) {
        fail("timers/" + path + ": expected {\"seconds\", \"count\"}");
        continue;
      }
      check_finite_nonneg(*t.find("seconds"), "timers/" + path + "/seconds");
      check_finite_nonneg(*t.find("count"), "timers/" + path + "/count");
    }
  }

  const pfc::obs::Json& counters = *j.find("counters");
  if (!counters.is_object()) {
    fail("counters must be an object");
  } else {
    for (const auto& [path, v] : counters.items()) {
      check_finite_nonneg(v, "counters/" + path);
    }
  }

  const pfc::obs::Json& derived = *j.find("derived");
  if (!derived.is_object()) {
    fail("derived must be an object");
  } else {
    for (const auto& [stat, v] : derived.items()) {
      check_finite_nonneg(v, "derived/" + stat);
    }
  }

  if (g_errors) {
    std::fprintf(stderr, "report_check: %s FAILED (%d error%s)\n", argv[1],
                 g_errors, g_errors == 1 ? "" : "s");
    return 1;
  }
  std::printf("report_check: %s OK (kind=%s, %zu timers, %zu counters)\n",
              argv[1], kind.str().c_str(), timers.items().size(),
              counters.items().size());
  return 0;
}
