#!/usr/bin/env bash
# Serve hardening acceptance ctest (DESIGN.md §12), end to end over TCP:
#
#   1. queue fills      -> submit past --max-queue gets a "rejected" event
#   2. cancel           -> a running job stops within one step cadence on
#                          `pfc_servectl cancel` (queued jobs cancel too)
#   3. deadline         -> a 1 s-deadline job ends with "deadline_exceeded"
#   4. watchdog         -> --fault=hang-worker@N hangs a worker; the
#                          watchdog kills the job, the daemon then
#                          completes a fresh job on the replacement worker
#   5. metrics          -> the new counter families are nonzero in
#                          metrics.json, validated by report_check --metrics
#   6. SIGTERM          -> graceful drain, exit 0
#
# Job ids are deterministic (sequential, rejected submits allocate none):
#   1 warm  2 long-cancel  3+4 queued  5 deadline  6 hang  7 fresh
#
#   serve_harden.sh <pfc_served> <pfc_servectl> <report_check> <workdir>
set -u

SERVED=$1
SERVECTL=$2
REPORT_CHECK=$3
WORKDIR=$4

rm -rf "$WORKDIR"
mkdir -p "$WORKDIR"
SOCKET="$WORKDIR/serve.sock"
PORTFILE="$WORKDIR/tcp.port"

fail() {
  echo "serve_harden: $*" >&2
  [ -f "$WORKDIR/served.log" ] && tail -n 40 "$WORKDIR/served.log" >&2
  exit 1
}

# Polls `grep -q "$2" $1` for up to ~30 s.
wait_grep() {
  for _ in $(seq 1 300); do
    [ -f "$1" ] && grep -q "$2" "$1" && return 0
    sleep 0.1
  done
  return 1
}

# Jobspecs: "warm" finishes in well under a second (and pre-warms the
# kernel cache so later compiles are instant); "long" never finishes on
# its own within this test's lifetime.
spec() { # name steps extra-keys...
  local name=$1 steps=$2 extra=${3:-}
  cat >"$WORKDIR/$name.json" <<EOF
{
  "schema": "pfc-jobspec-v1",
  "name": "$name",
  "model": { "preset": "two_phase", "dims": 2, "overrides": { "dt": 0.01 } },
  "initial": { "kind": "disk" },
  "steps": $steps,
  "mode": "single"${extra:+,
  $extra}
}
EOF
}
spec warm 30
spec long 2000000
spec deadline 2000000 '"deadline_seconds": 1.0'

# Pre-warm the kernel cache with a throwaway daemon so the hardened
# daemon's watchdog — armed from its very first job — never races a cold
# JIT compile (the heartbeat starts with the first progress sample).
"$SERVED" --socket="$WORKDIR/warm.sock" --workers=1 \
  --cache-dir="$WORKDIR/kernel_cache" --cache-mb=64 \
  --log-file="$WORKDIR/warm.log" --log-level=warn &
WARM_PID=$!
trap 'kill "$WARM_PID" 2>/dev/null; wait "$WARM_PID" 2>/dev/null' EXIT
for _ in $(seq 1 300); do
  [ -S "$WORKDIR/warm.sock" ] && break
  sleep 0.1
done
"$SERVECTL" --socket="$WORKDIR/warm.sock" --timeout-seconds=120 --retries=5 \
  submit "$WORKDIR/warm.json" >/dev/null 2>&1 || fail "cache warm-up failed"
"$SERVECTL" --socket="$WORKDIR/warm.sock" shutdown >/dev/null \
  || fail "warm-up daemon shutdown failed"
wait "$WARM_PID" || fail "warm-up daemon exited non-zero"

# One worker + tiny queue so admission control is easy to saturate; the
# watchdog and per-connection io deadlines armed; job 6 hangs its worker.
"$SERVED" --socket="$SOCKET" --tcp-port=0 --tcp-host=127.0.0.1 \
  --port-file="$PORTFILE" --workers=1 --max-queue=2 \
  --watchdog-seconds=2 --io-timeout-seconds=30 --drain-seconds=2 \
  --fault=hang-worker@6 --progress-every=200 \
  --cache-dir="$WORKDIR/kernel_cache" --cache-mb=64 \
  --log-file="$WORKDIR/served.log" --log-level=info &
SERVED_PID=$!
trap 'kill "$SERVED_PID" 2>/dev/null; wait "$SERVED_PID" 2>/dev/null' EXIT

wait_grep "$PORTFILE" '[0-9]' || fail "daemon never wrote $PORTFILE"
PORT=$(cat "$PORTFILE")
CTL=("$SERVECTL" "--socket=tcp:127.0.0.1:$PORT" "--timeout-seconds=60" \
     "--retries=5")

"${CTL[@]}" ping >/dev/null || fail "ping over tcp failed"

# --- 0. warm job (id 1): the happy path over TCP (kernel-cache hit) ---------
"${CTL[@]}" submit "$WORKDIR/warm.json" >"$WORKDIR/job1.out" 2>/dev/null \
  || fail "warm job failed: $(cat "$WORKDIR/job1.out")"
grep -q '"finished"' "$WORKDIR/job1.out" || fail "warm job not finished"

# --- 1. saturate: 1 running + 2 queued, then the queue-full rejection -------
"${CTL[@]}" submit "$WORKDIR/long.json" \
  >"$WORKDIR/job2.out" 2>"$WORKDIR/job2.err" &
JOB2_PID=$!
wait_grep "$WORKDIR/job2.err" '"started"' || fail "job 2 never started"
"${CTL[@]}" submit "$WORKDIR/long.json" \
  >"$WORKDIR/job3.out" 2>"$WORKDIR/job3.err" &
JOB3_PID=$!
wait_grep "$WORKDIR/job3.err" '"accepted"' || fail "job 3 never accepted"
"${CTL[@]}" submit "$WORKDIR/long.json" \
  >"$WORKDIR/job4.out" 2>"$WORKDIR/job4.err" &
JOB4_PID=$!
wait_grep "$WORKDIR/job4.err" '"accepted"' || fail "job 4 never accepted"

"${CTL[@]}" submit "$WORKDIR/long.json" >"$WORKDIR/reject.out" 2>/dev/null
[ $? -eq 1 ] || fail "over-quota submit should exit 1"
grep -q '"rejected"' "$WORKDIR/reject.out" || fail "expected a rejected event"
grep -q 'queue full' "$WORKDIR/reject.out" || fail "expected a queue-full reason"

# Live snapshot while 3 jobs are in flight: the per-tenant gauge is hot.
"${CTL[@]}" metrics >"$WORKDIR/metrics_live.json" || fail "metrics (live) failed"
"$REPORT_CHECK" --metrics "$WORKDIR/metrics_live.json" \
  pfc_tenant_inflight >/dev/null || fail "live metrics validation failed"

# --- 2. cancel: queued jobs drop instantly, the running one within a step ---
"${CTL[@]}" cancel 3 >"$WORKDIR/cancel3.out" || fail "cancel 3 failed"
grep -q '"state":"cancelled"' "$WORKDIR/cancel3.out" \
  || fail "queued cancel should ack cancelled: $(cat "$WORKDIR/cancel3.out")"
"${CTL[@]}" cancel 4 >"$WORKDIR/cancel4.out" || fail "cancel 4 failed"

SECONDS=0
"${CTL[@]}" cancel 2 >"$WORKDIR/cancel2.out" || fail "cancel 2 failed"
grep -q '"state":"cancelling"' "$WORKDIR/cancel2.out" \
  || fail "running cancel should ack cancelling: $(cat "$WORKDIR/cancel2.out")"
wait "$JOB2_PID"
[ $? -eq 1 ] || fail "cancelled job 2 should exit 1"
[ "$SECONDS" -le 15 ] || fail "cancel of running job took ${SECONDS}s"
grep -q '"cancelled"' "$WORKDIR/job2.out" || fail "job 2 missing cancelled event"
wait "$JOB3_PID" 2>/dev/null
grep -q '"cancelled"' "$WORKDIR/job3.out" || fail "job 3 missing cancelled event"
wait "$JOB4_PID" 2>/dev/null
grep -q '"cancelled"' "$WORKDIR/job4.out" || fail "job 4 missing cancelled event"

# A cancel for an id the daemon never issued errors distinctly.
"${CTL[@]}" cancel 999 >"$WORKDIR/cancel999.out" 2>/dev/null
[ $? -eq 1 ] || fail "cancel of unknown job should exit 1"

# --- 3. deadline (id 5): 1 s wall budget on an endless job ------------------
"${CTL[@]}" submit "$WORKDIR/deadline.json" >"$WORKDIR/job5.out" 2>/dev/null
[ $? -eq 1 ] || fail "deadline job should exit 1"
grep -q '"deadline_exceeded"' "$WORKDIR/job5.out" \
  || fail "job 5 missing deadline_exceeded: $(cat "$WORKDIR/job5.out")"

# --- 4. watchdog (id 6): the worker hangs before running; the monitor kills
# the job, emits the terminal error itself, and a replacement worker takes
# over — proven by the fresh job (id 7) completing afterwards.
"${CTL[@]}" submit "$WORKDIR/warm.json" >"$WORKDIR/job6.out" 2>/dev/null
[ $? -eq 1 ] || fail "hung job should exit 1"
grep -q 'watchdog' "$WORKDIR/job6.out" \
  || fail "job 6 missing watchdog error: $(cat "$WORKDIR/job6.out")"

"${CTL[@]}" submit "$WORKDIR/warm.json" >"$WORKDIR/job7.out" 2>/dev/null \
  || fail "fresh job after watchdog kill failed: $(cat "$WORKDIR/job7.out")"
grep -q '"finished"' "$WORKDIR/job7.out" || fail "job 7 not finished"

# --- 5. metrics: every hardening family moved ------------------------------
"${CTL[@]}" metrics >"$WORKDIR/metrics.json" || fail "metrics dump failed"
"${CTL[@]}" metrics --text >"$WORKDIR/metrics.prom" || fail "prom dump failed"
"$REPORT_CHECK" --metrics "$WORKDIR/metrics.json" \
  pfc_jobs_submitted_total pfc_jobs_rejected_total pfc_jobs_cancelled_total \
  pfc_jobs_deadline_exceeded_total pfc_jobs_watchdog_killed_total \
  >/dev/null || fail "final metrics validation failed"

# --- 6. graceful SIGTERM: drain and exit 0 ---------------------------------
kill -TERM "$SERVED_PID"
wait "$SERVED_PID"
DAEMON_STATUS=$?
trap - EXIT
[ "$DAEMON_STATUS" -eq 0 ] || fail "daemon exited $DAEMON_STATUS on SIGTERM"
grep -q 'drain' "$WORKDIR/served.log" || fail "daemon log missing drain record"

echo "serve_harden: OK (reject, cancel, deadline, watchdog, metrics, sigterm)"
