#!/usr/bin/env bash
# Serve round-trip ctest: start pfc_served on a private socket with a fresh
# kernel-cache directory, run pfc_servectl selftest (submit the same spec
# twice, verify the second job is a kernel-cache hit with near-zero compile
# time and all runs are bitwise-identical), then shut the daemon down.
#
#   serve_roundtrip.sh <pfc_served> <pfc_servectl> <jobspec.json> <workdir>
set -u

SERVED=$1
SERVECTL=$2
JOBSPEC=$3
WORKDIR=$4

rm -rf "$WORKDIR"
mkdir -p "$WORKDIR"
SOCKET="$WORKDIR/serve.sock"

"$SERVED" --socket="$SOCKET" --workers=2 \
  --cache-dir="$WORKDIR/kernel_cache" --cache-mb=64 &
SERVED_PID=$!
trap 'kill "$SERVED_PID" 2>/dev/null; wait "$SERVED_PID" 2>/dev/null' EXIT

# Wait for the socket to come up (the daemon binds before it logs).
for _ in $(seq 1 100); do
  [ -S "$SOCKET" ] && break
  sleep 0.1
done
if ! [ -S "$SOCKET" ]; then
  echo "serve_roundtrip: daemon never bound $SOCKET" >&2
  exit 1
fi

"$SERVECTL" --socket="$SOCKET" ping || exit 1
"$SERVECTL" --socket="$SOCKET" selftest "$JOBSPEC"
STATUS=$?

"$SERVECTL" --socket="$SOCKET" shutdown || exit 1
wait "$SERVED_PID"
DAEMON_STATUS=$?
trap - EXIT

if [ "$STATUS" -ne 0 ]; then
  echo "serve_roundtrip: selftest failed" >&2
  exit "$STATUS"
fi
if [ "$DAEMON_STATUS" -ne 0 ]; then
  echo "serve_roundtrip: daemon exited with $DAEMON_STATUS" >&2
  exit 1
fi
echo "serve_roundtrip: OK"
