#!/usr/bin/env bash
# Serve round-trip ctest: start pfc_served on a private socket with a fresh
# kernel-cache directory, run pfc_servectl selftest (submit the same spec
# twice, verify the second job is a kernel-cache hit with near-zero compile
# time and all runs are bitwise-identical), follow a third job's live
# progress stream, dump the telemetry snapshot (metrics.json) and the
# Prometheus exposition (metrics.prom) for the fixture-chained report_check
# tests, then shut the daemon down.
#
#   serve_roundtrip.sh <pfc_served> <pfc_servectl> <jobspec.json> <workdir>
set -u

SERVED=$1
SERVECTL=$2
JOBSPEC=$3
WORKDIR=$4

rm -rf "$WORKDIR"
mkdir -p "$WORKDIR"
SOCKET="$WORKDIR/serve.sock"

"$SERVED" --socket="$SOCKET" --workers=2 \
  --cache-dir="$WORKDIR/kernel_cache" --cache-mb=64 \
  --log-file="$WORKDIR/served.log" --log-level=info &
SERVED_PID=$!
trap 'kill "$SERVED_PID" 2>/dev/null; wait "$SERVED_PID" 2>/dev/null' EXIT

# Wait for the socket to come up (the daemon binds before it logs).
for _ in $(seq 1 100); do
  [ -S "$SOCKET" ] && break
  sleep 0.1
done
if ! [ -S "$SOCKET" ]; then
  echo "serve_roundtrip: daemon never bound $SOCKET" >&2
  exit 1
fi

"$SERVECTL" --socket="$SOCKET" ping || exit 1
"$SERVECTL" --socket="$SOCKET" selftest "$JOBSPEC"
STATUS=$?

# Third job with --follow: the daemon must stream live progress events and
# the client render them one line each ("... step N/M ...").
"$SERVECTL" --socket="$SOCKET" submit --follow "$JOBSPEC" \
  >"$WORKDIR/follow.out" 2>"$WORKDIR/follow.err"
if [ $? -ne 0 ]; then
  echo "serve_roundtrip: follow submit failed" >&2
  cat "$WORKDIR/follow.err" >&2
  exit 1
fi
STEPS=$(sed -n 's/.* step \([0-9][0-9]*\)\/[0-9].*/\1/p' "$WORKDIR/follow.err")
NPROGRESS=$(printf '%s\n' "$STEPS" | sed '/^$/d' | wc -l)
if [ "$NPROGRESS" -lt 3 ]; then
  echo "serve_roundtrip: expected >= 3 progress lines, got $NPROGRESS" >&2
  cat "$WORKDIR/follow.err" >&2
  exit 1
fi
SORTED=$(printf '%s\n' "$STEPS" | sed '/^$/d' | sort -n)
if [ "$STEPS" != "$SORTED" ]; then
  echo "serve_roundtrip: progress steps not monotone:" >&2
  printf '%s\n' "$STEPS" >&2
  exit 1
fi

# Dump both exposition formats while the daemon is still up; the
# metrics_schema_valid / prom_lint ctests validate these files.
"$SERVECTL" --socket="$SOCKET" metrics >"$WORKDIR/metrics.json" || exit 1
"$SERVECTL" --socket="$SOCKET" metrics --text >"$WORKDIR/metrics.prom" || exit 1

"$SERVECTL" --socket="$SOCKET" shutdown || exit 1
wait "$SERVED_PID"
DAEMON_STATUS=$?
trap - EXIT

if [ "$STATUS" -ne 0 ]; then
  echo "serve_roundtrip: selftest failed" >&2
  exit "$STATUS"
fi
if [ "$DAEMON_STATUS" -ne 0 ]; then
  echo "serve_roundtrip: daemon exited with $DAEMON_STATUS" >&2
  exit 1
fi

# Structured log: non-empty JSON-lines file with the expected keys and a
# job correlation id from at least one per-job record.
if ! [ -s "$WORKDIR/served.log" ]; then
  echo "serve_roundtrip: structured log is empty" >&2
  exit 1
fi
if ! grep -q '"component":"pfc_served"' "$WORKDIR/served.log"; then
  echo "serve_roundtrip: structured log lacks component field" >&2
  exit 1
fi
if ! grep -q '"correlation_id":"job-' "$WORKDIR/served.log"; then
  echo "serve_roundtrip: structured log lacks job correlation ids" >&2
  exit 1
fi

# Graceful signal handling: a second daemon gets SIGTERM instead of the
# shutdown op and must drain cleanly — exit code 0, no crash, no hang.
SOCKET2="$WORKDIR/serve2.sock"
"$SERVED" --socket="$SOCKET2" --workers=1 --drain-seconds=2 \
  --log-file="$WORKDIR/served2.log" --log-level=info &
SERVED2_PID=$!
for _ in $(seq 1 100); do
  [ -S "$SOCKET2" ] && break
  sleep 0.1
done
if ! [ -S "$SOCKET2" ]; then
  echo "serve_roundtrip: second daemon never bound $SOCKET2" >&2
  kill "$SERVED2_PID" 2>/dev/null
  exit 1
fi
"$SERVECTL" --socket="$SOCKET2" ping >/dev/null || exit 1
kill -TERM "$SERVED2_PID"
wait "$SERVED2_PID"
SIGTERM_STATUS=$?
if [ "$SIGTERM_STATUS" -ne 0 ]; then
  echo "serve_roundtrip: SIGTERM shutdown exited $SIGTERM_STATUS (want 0)" >&2
  exit 1
fi
if [ -S "$SOCKET2" ]; then
  echo "serve_roundtrip: daemon left $SOCKET2 behind after SIGTERM" >&2
  exit 1
fi
echo "serve_roundtrip: OK ($NPROGRESS progress events, SIGTERM clean)"
